// Tests of the deadline-aware execution layer: Deadline/RunContext
// arithmetic, the failpoint facility, parse-error diagnostics, and the
// degradation ladder each phase takes when its time runs out. Failpoints
// let the tests force expiry at exact sites deterministically instead of
// racing the wall clock.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>
#include <thread>

#include "src/core/catapult.h"
#include "src/csg/csg.h"
#include "src/data/molecule_generator.h"
#include "src/graph/algorithms.h"
#include "src/graph/io.h"
#include "src/iso/vf2.h"
#include "src/util/deadline.h"
#include "src/util/failpoint.h"

namespace catapult {
namespace {

class RobustnessTest : public ::testing::Test {
 protected:
  void TearDown() override { failpoint::DisarmAll(); }
};

GraphDatabase SmallDb(uint64_t seed = 31, size_t n = 60) {
  MoleculeGeneratorOptions gen;
  gen.num_graphs = n;
  gen.min_vertices = 8;
  gen.max_vertices = 16;
  gen.seed = seed;
  return GenerateMoleculeDatabase(gen);
}

CatapultOptions FastOptions() {
  CatapultOptions options;
  options.selector.budget.eta_min = 3;
  options.selector.budget.eta_max = 6;
  options.selector.budget.gamma = 6;
  options.selector.walks_per_candidate = 8;
  options.clustering.max_cluster_size = 12;
  options.clustering.fine_mcs.node_budget = 3000;
  options.seed = 99;
  return options;
}

// ---------------------------------------------------------------------------
// Deadline / RunContext arithmetic.

TEST_F(RobustnessTest, DeadlineDefaultsToInfinite) {
  Deadline d;
  EXPECT_TRUE(d.infinite());
  EXPECT_FALSE(d.Expired());
  EXPECT_EQ(d.RemainingSeconds(),
            std::numeric_limits<double>::infinity());
  // Slicing infinity stays infinite.
  EXPECT_TRUE(d.Fraction(0.25).infinite());
}

TEST_F(RobustnessTest, DeadlineExpires) {
  Deadline d = Deadline::AfterMillis(1);
  EXPECT_FALSE(d.infinite());
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_TRUE(d.Expired());
  EXPECT_EQ(d.RemainingSeconds(), 0.0);
}

TEST_F(RobustnessTest, DeadlineFractionIsEarlier) {
  Deadline d = Deadline::AfterSeconds(10.0);
  Deadline slice = d.Fraction(0.1);
  EXPECT_FALSE(slice.infinite());
  // The slice covers ~1s of the ~10s allowance.
  EXPECT_LE(slice.RemainingSeconds(), 1.01);
  EXPECT_GT(slice.RemainingSeconds(), 0.5);
  EXPECT_LE(slice.RemainingSeconds(), d.RemainingSeconds());
}

TEST_F(RobustnessTest, DeadlineEarliestPicksSooner) {
  Deadline a = Deadline::AfterSeconds(10.0);
  Deadline b = Deadline::AfterSeconds(1.0);
  EXPECT_LE(Deadline::Earliest(a, b).RemainingSeconds(), 1.01);
  EXPECT_LE(Deadline::Earliest(b, a).RemainingSeconds(), 1.01);
  // Infinite loses against any finite deadline.
  EXPECT_FALSE(Deadline::Earliest(Deadline::Infinite(), b).infinite());
  EXPECT_TRUE(Deadline::Earliest(Deadline::Infinite(), Deadline::Infinite())
                  .infinite());
}

TEST_F(RobustnessTest, CancelTokenIsSharedAcrossCopies) {
  RunContext ctx = RunContext::NoLimit();
  RunContext copy = ctx.Slice(0.5);
  EXPECT_FALSE(copy.StopRequested());
  ctx.Cancel();
  EXPECT_TRUE(copy.StopRequested());
  EXPECT_TRUE(ctx.StopRequested());
}

TEST_F(RobustnessTest, TightenNodeBudgetIsIdentityWhenUnlimited) {
  RunContext ctx = RunContext::NoLimit();
  EXPECT_EQ(ctx.TightenNodeBudget(0), 0u);  // 0 = unlimited convention
  EXPECT_EQ(ctx.TightenNodeBudget(5000), 5000u);
}

TEST_F(RobustnessTest, TightenNodeBudgetShrinksNearDeadline) {
  RunContext ctx = RunContext::WithDeadlineMillis(50);
  // 50ms at 2e6 nodes/s affords ~1e5 nodes; a huge configured budget must
  // come back tightened, and never below 1.
  uint64_t tightened = ctx.TightenNodeBudget(1000000000);
  EXPECT_LT(tightened, 1000000000u);
  EXPECT_GE(tightened, 1u);

  RunContext expired(Deadline::AfterSeconds(0.0));
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_EQ(expired.TightenNodeBudget(5000), 1u);
}

// ---------------------------------------------------------------------------
// Failpoints.

TEST_F(RobustnessTest, FailpointFiresOnlyWhenArmed) {
  EXPECT_FALSE(failpoint::AnyArmed());
  EXPECT_FALSE(CATAPULT_FAILPOINT("robustness.test.site"));
  failpoint::Arm("robustness.test.site");
  EXPECT_TRUE(failpoint::AnyArmed());
  EXPECT_TRUE(CATAPULT_FAILPOINT("robustness.test.site"));
  EXPECT_FALSE(CATAPULT_FAILPOINT("robustness.other.site"));
  failpoint::Disarm("robustness.test.site");
  EXPECT_FALSE(CATAPULT_FAILPOINT("robustness.test.site"));
  // Hit counts survive disarming for post-hoc assertions.
  EXPECT_EQ(failpoint::HitCount("robustness.test.site"), 1u);
}

TEST_F(RobustnessTest, FailpointCountLimitsFirings) {
  failpoint::Arm("robustness.counted", 2);
  EXPECT_TRUE(CATAPULT_FAILPOINT("robustness.counted"));
  EXPECT_TRUE(CATAPULT_FAILPOINT("robustness.counted"));
  EXPECT_FALSE(CATAPULT_FAILPOINT("robustness.counted"));
  EXPECT_EQ(failpoint::HitCount("robustness.counted"), 2u);
}

TEST_F(RobustnessTest, ScopedFailpointDisarmsOnExit) {
  {
    failpoint::ScopedFailpoint fp("robustness.scoped");
    EXPECT_TRUE(CATAPULT_FAILPOINT("robustness.scoped"));
  }
  EXPECT_FALSE(failpoint::AnyArmed());
  EXPECT_FALSE(CATAPULT_FAILPOINT("robustness.scoped"));
}

TEST_F(RobustnessTest, StopRequestedHonoursFailpointSite) {
  RunContext ctx = RunContext::NoLimit();
  EXPECT_FALSE(ctx.StopRequested("robustness.stop"));
  failpoint::ScopedFailpoint fp("robustness.stop");
  EXPECT_TRUE(ctx.StopRequested("robustness.stop"));
  EXPECT_FALSE(ctx.StopRequested("robustness.unrelated"));
}

// ---------------------------------------------------------------------------
// Parse diagnostics.

TEST_F(RobustnessTest, ParseErrorReportsLineAndReason) {
  std::istringstream in("t # 0\nv 0 C\nv 1 N\ne 0 1\ne 0 7\n");
  ParseError error;
  EXPECT_FALSE(ReadDatabase(in, &error).has_value());
  EXPECT_EQ(error.line, 5u);
  EXPECT_NE(error.message.find("out of range"), std::string::npos);
}

TEST_F(RobustnessTest, ParseErrorReportsDuplicateEdge) {
  std::istringstream in("t # 0\nv 0 C\nv 1 N\ne 0 1\ne 1 0\n");
  ParseError error;
  EXPECT_FALSE(ReadDatabase(in, &error).has_value());
  EXPECT_EQ(error.line, 5u);
  EXPECT_NE(error.message.find("duplicate edge"), std::string::npos);
}

TEST_F(RobustnessTest, ParseErrorInjectedByFailpoint) {
  failpoint::ScopedFailpoint fp("io.parse", 1);
  std::istringstream in("t # 0\nv 0 C\nv 1 N\ne 0 1\n");
  ParseError error;
  EXPECT_FALSE(ReadDatabase(in, &error).has_value());
  EXPECT_GT(error.line, 0u);
  EXPECT_EQ(failpoint::HitCount("io.parse"), 1u);
}

TEST_F(RobustnessTest, UnreadableFileReportsLineZero) {
  ParseError error;
  EXPECT_FALSE(
      ReadDatabaseFromFile("/nonexistent/x.txt", &error).has_value());
  EXPECT_EQ(error.line, 0u);
  EXPECT_FALSE(error.message.empty());
}

// ---------------------------------------------------------------------------
// Per-phase degradation.

TEST_F(RobustnessTest, ClusteringFallsBackToValidPartitionOnExpiry) {
  GraphDatabase db = SmallDb();
  failpoint::ScopedFailpoint fp("cluster.coarse");
  CatapultResult result = RunCatapult(db, FastOptions());
  EXPECT_FALSE(result.execution.clustering_complete);
  // Degraded or not, the clusters must still partition the database.
  std::set<GraphId> seen;
  for (const auto& cluster : result.clusters) {
    for (GraphId id : cluster) {
      EXPECT_TRUE(seen.insert(id).second) << "graph in two clusters";
      EXPECT_LT(id, db.size());
    }
  }
  EXPECT_EQ(seen.size(), db.size());
}

TEST_F(RobustnessTest, CsgDegradesButKeepsOnePerCluster) {
  GraphDatabase db = SmallDb();
  std::vector<std::vector<GraphId>> clusters = {
      {0, 1, 2, 3}, {4, 5, 6}, {7, 8, 9, 10}};
  failpoint::ScopedFailpoint fp("csg.fold_member");
  size_t degraded = 0;
  std::vector<ClusterSummaryGraph> csgs =
      BuildCsgs(db, clusters, RunContext::NoLimit(), &degraded);
  ASSERT_EQ(csgs.size(), clusters.size());
  EXPECT_GT(degraded, 0u);
  // Every summary folded at least its first member, so none is empty.
  for (const ClusterSummaryGraph& csg : csgs) {
    EXPECT_GT(csg.NumEdges(), 0u);
  }
}

TEST_F(RobustnessTest, SelectionFallsBackToFrequentEdgePatterns) {
  GraphDatabase db = SmallDb();
  CatapultOptions options = FastOptions();
  failpoint::ScopedFailpoint fp("selector.iteration");
  CatapultResult result = RunCatapult(db, options);
  EXPECT_FALSE(result.selection.complete);
  EXPECT_FALSE(result.execution.selection_complete);
  EXPECT_GT(result.selection.fallback_patterns, 0u);
  EXPECT_FALSE(result.selection.patterns.empty());
  // Fallback patterns still respect the pattern budget of Definition 3.1.
  for (const SelectedPattern& p : result.selection.patterns) {
    EXPECT_GE(p.graph.NumEdges(), options.selector.budget.eta_min);
    EXPECT_LE(p.graph.NumEdges(), options.selector.budget.eta_max);
    EXPECT_TRUE(IsConnected(p.graph));
    EXPECT_TRUE(p.fallback);
  }
  EXPECT_TRUE(result.execution.Degraded());
}

TEST_F(RobustnessTest, ExpiredDeadlineStillProducesConformingPanel) {
  GraphDatabase db = SmallDb();
  CatapultOptions options = FastOptions();
  // Already-expired context: every phase takes its shortest path.
  RunContext ctx(Deadline::AfterSeconds(0.0));
  CatapultResult result = RunCatapult(db, options, ctx);
  EXPECT_TRUE(result.execution.deadline_set);
  EXPECT_TRUE(result.execution.Degraded());
  EXPECT_EQ(result.csgs.size(), result.clusters.size());
  for (const SelectedPattern& p : result.selection.patterns) {
    EXPECT_GE(p.graph.NumEdges(), options.selector.budget.eta_min);
    EXPECT_LE(p.graph.NumEdges(), options.selector.budget.eta_max);
  }
}

TEST_F(RobustnessTest, CancellationStopsThePipeline) {
  GraphDatabase db = SmallDb();
  RunContext ctx = RunContext::NoLimit();
  ctx.Cancel();  // cancelled before the run even starts
  CatapultResult result = RunCatapult(db, FastOptions(), ctx);
  EXPECT_TRUE(result.execution.Degraded());
}

TEST_F(RobustnessTest, TinyIsoBudgetIsCountedAsExhausted) {
  GraphDatabase db = SmallDb();
  CatapultOptions options = FastOptions();
  options.selector.iso_node_budget = 1;  // every coverage VF2 call truncates
  CatapultResult result = RunCatapult(db, options);
  EXPECT_GT(result.selection.iso_budget_exhausted, 0u);
  EXPECT_EQ(result.execution.iso_budget_exhausted,
            result.selection.iso_budget_exhausted);
}

// ---------------------------------------------------------------------------
// Determinism: without a deadline the machinery must be invisible.

TEST_F(RobustnessTest, NoDeadlineIsDeterministicAndUndegraded) {
  GraphDatabase db = SmallDb();
  CatapultOptions options = FastOptions();
  CatapultResult a = RunCatapult(db, options);
  CatapultResult b = RunCatapult(db, options, RunContext::NoLimit());
  EXPECT_FALSE(a.execution.deadline_set);
  EXPECT_FALSE(a.execution.Degraded());
  ASSERT_EQ(a.selection.patterns.size(), b.selection.patterns.size());
  for (size_t i = 0; i < a.selection.patterns.size(); ++i) {
    const Graph& ga = a.selection.patterns[i].graph;
    const Graph& gb = b.selection.patterns[i].graph;
    ASSERT_EQ(ga.NumVertices(), gb.NumVertices());
    ASSERT_EQ(ga.NumEdges(), gb.NumEdges());
    EXPECT_EQ(a.selection.patterns[i].score, b.selection.patterns[i].score);
    EXPECT_TRUE(AreIsomorphic(ga, gb));
  }
}

}  // namespace
}  // namespace catapult
