#include "src/tree/canonical.h"

#include <gtest/gtest.h>

#include "src/graph/algorithms.h"
#include "src/util/rng.h"

namespace catapult {
namespace {

Graph PathGraph(const std::vector<Label>& labels) {
  Graph g;
  for (Label l : labels) g.AddVertex(l);
  for (size_t i = 0; i + 1 < labels.size(); ++i) {
    g.AddEdge(static_cast<VertexId>(i), static_cast<VertexId>(i + 1));
  }
  return g;
}

TEST(TreeCentersTest, SingleVertex) {
  Graph g;
  g.AddVertex(0);
  EXPECT_EQ(TreeCenters(g), std::vector<VertexId>{0});
}

TEST(TreeCentersTest, EvenPathHasTwoCenters) {
  Graph g = PathGraph({0, 0, 0, 0});
  std::vector<VertexId> centers = TreeCenters(g);
  ASSERT_EQ(centers.size(), 2u);
  EXPECT_EQ(centers[0], 1u);
  EXPECT_EQ(centers[1], 2u);
}

TEST(TreeCentersTest, OddPathHasOneCenter) {
  Graph g = PathGraph({0, 0, 0, 0, 0});
  std::vector<VertexId> centers = TreeCenters(g);
  ASSERT_EQ(centers.size(), 1u);
  EXPECT_EQ(centers[0], 2u);
}

TEST(TreeCentersTest, StarCenter) {
  Graph g;
  VertexId c = g.AddVertex(9);
  for (int i = 0; i < 5; ++i) g.AddEdge(c, g.AddVertex(0));
  std::vector<VertexId> centers = TreeCenters(g);
  ASSERT_EQ(centers.size(), 1u);
  EXPECT_EQ(centers[0], c);
}

TEST(CanonicalStringTest, InvariantUnderVertexOrder) {
  // Same labelled tree built in two different vertex orders.
  Graph a;
  VertexId a0 = a.AddVertex(1);
  VertexId a1 = a.AddVertex(2);
  VertexId a2 = a.AddVertex(3);
  VertexId a3 = a.AddVertex(2);
  a.AddEdge(a0, a1);
  a.AddEdge(a0, a2);
  a.AddEdge(a2, a3);

  Graph b;
  VertexId b3 = b.AddVertex(2);
  VertexId b2 = b.AddVertex(3);
  VertexId b0 = b.AddVertex(1);
  VertexId b1 = b.AddVertex(2);
  b.AddEdge(b2, b3);
  b.AddEdge(b0, b2);
  b.AddEdge(b1, b0);

  EXPECT_EQ(CanonicalTreeString(a), CanonicalTreeString(b));
}

TEST(CanonicalStringTest, DistinguishesAttachmentPoint) {
  // D attached under B vs under C (B, C distinct labels): different trees.
  Graph a;  // A-B, A-C, B-D
  VertexId aa = a.AddVertex(0);
  VertexId ab = a.AddVertex(1);
  VertexId ac = a.AddVertex(2);
  VertexId ad = a.AddVertex(3);
  a.AddEdge(aa, ab);
  a.AddEdge(aa, ac);
  a.AddEdge(ab, ad);

  Graph b;  // A-B, A-C, C-D
  VertexId ba = b.AddVertex(0);
  VertexId bb = b.AddVertex(1);
  VertexId bc = b.AddVertex(2);
  VertexId bd = b.AddVertex(3);
  b.AddEdge(ba, bb);
  b.AddEdge(ba, bc);
  b.AddEdge(bc, bd);

  EXPECT_NE(CanonicalTreeString(a), CanonicalTreeString(b));
}

TEST(CanonicalStringTest, DistinguishesLabels) {
  EXPECT_NE(CanonicalTreeString(PathGraph({0, 0, 0})),
            CanonicalTreeString(PathGraph({0, 0, 1})));
}

TEST(CanonicalStringTest, PathInvariantUnderReversal) {
  EXPECT_EQ(CanonicalTreeString(PathGraph({1, 2, 3, 4})),
            CanonicalTreeString(PathGraph({4, 3, 2, 1})));
}

TEST(CanonicalStringTest, DistinguishesPathFromStar) {
  Graph star;
  VertexId c = star.AddVertex(0);
  for (int i = 0; i < 3; ++i) star.AddEdge(c, star.AddVertex(0));
  EXPECT_NE(CanonicalTreeString(star),
            CanonicalTreeString(PathGraph({0, 0, 0, 0})));
}

// Property sweep: random trees must produce permutation-invariant strings.
class CanonicalStringPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(CanonicalStringPropertyTest, PermutationInvariance) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 7919 + 3);
  // Build a random labelled tree with 2-12 vertices.
  size_t n = 2 + rng.UniformInt(11);
  Graph tree;
  tree.AddVertex(static_cast<Label>(rng.UniformInt(4)));
  for (size_t v = 1; v < n; ++v) {
    VertexId parent = static_cast<VertexId>(rng.UniformInt(v));
    VertexId child = tree.AddVertex(static_cast<Label>(rng.UniformInt(4)));
    tree.AddEdge(parent, child);
  }
  // Random relabelling of vertex ids.
  std::vector<VertexId> perm(n);
  for (size_t i = 0; i < n; ++i) perm[i] = static_cast<VertexId>(i);
  rng.Shuffle(perm);
  Graph shuffled;
  std::vector<VertexId> new_id(n);
  for (size_t i = 0; i < n; ++i) {
    new_id[perm[i]] = shuffled.AddVertex(tree.VertexLabel(perm[i]));
  }
  for (const Edge& e : tree.EdgeList()) {
    shuffled.AddEdge(new_id[e.u], new_id[e.v]);
  }
  EXPECT_EQ(CanonicalTreeString(tree), CanonicalTreeString(shuffled));
}

INSTANTIATE_TEST_SUITE_P(RandomTrees, CanonicalStringPropertyTest,
                         ::testing::Range(0, 30));

TEST(LcsTest, Basic) {
  EXPECT_EQ(LongestCommonSubsequence("abcde", "ace"), 3u);
  EXPECT_EQ(LongestCommonSubsequence("abc", "abc"), 3u);
  EXPECT_EQ(LongestCommonSubsequence("abc", "xyz"), 0u);
  EXPECT_EQ(LongestCommonSubsequence("", "abc"), 0u);
}

TEST(LcsTest, Symmetry) {
  EXPECT_EQ(LongestCommonSubsequence("banana", "atana"),
            LongestCommonSubsequence("atana", "banana"));
}

TEST(SubtreeSimilarityTest, IdenticalIsOne) {
  std::string c = CanonicalTreeString(PathGraph({0, 1, 2}));
  EXPECT_DOUBLE_EQ(SubtreeSimilarity(c, c), 1.0);
}

TEST(SubtreeSimilarityTest, BoundedAndSymmetric) {
  std::string a = CanonicalTreeString(PathGraph({0, 1, 2, 3}));
  std::string b = CanonicalTreeString(PathGraph({0, 0, 0}));
  double s = SubtreeSimilarity(a, b);
  EXPECT_GE(s, 0.0);
  EXPECT_LE(s, 1.0);
  EXPECT_DOUBLE_EQ(s, SubtreeSimilarity(b, a));
}

TEST(SubtreeSimilarityTest, EmptyStringsAreIdentical) {
  EXPECT_DOUBLE_EQ(SubtreeSimilarity("", ""), 1.0);
}

}  // namespace
}  // namespace catapult
