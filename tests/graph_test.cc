#include "src/graph/graph.h"

#include <gtest/gtest.h>

#include <sstream>

#include "src/graph/algorithms.h"
#include "src/graph/graph_database.h"
#include "src/graph/io.h"
#include "src/graph/label_map.h"
#include "src/util/rng.h"

namespace catapult {
namespace {

Graph MakeTriangle(Label a = 0, Label b = 1, Label c = 2) {
  Graph g;
  VertexId va = g.AddVertex(a);
  VertexId vb = g.AddVertex(b);
  VertexId vc = g.AddVertex(c);
  g.AddEdge(va, vb);
  g.AddEdge(vb, vc);
  g.AddEdge(vc, va);
  return g;
}

Graph MakePath(size_t n, Label label = 0) {
  Graph g;
  for (size_t i = 0; i < n; ++i) g.AddVertex(label);
  for (size_t i = 0; i + 1 < n; ++i) {
    g.AddEdge(static_cast<VertexId>(i), static_cast<VertexId>(i + 1));
  }
  return g;
}

TEST(GraphTest, EmptyGraph) {
  Graph g;
  EXPECT_EQ(g.NumVertices(), 0u);
  EXPECT_EQ(g.NumEdges(), 0u);
  EXPECT_EQ(g.Size(), 0u);
  EXPECT_EQ(g.id(), kInvalidGraphId);
}

TEST(GraphTest, AddVertexAssignsConsecutiveIds) {
  Graph g;
  EXPECT_EQ(g.AddVertex(5), 0u);
  EXPECT_EQ(g.AddVertex(7), 1u);
  EXPECT_EQ(g.AddVertex(5), 2u);
  EXPECT_EQ(g.NumVertices(), 3u);
  EXPECT_EQ(g.VertexLabel(0), 5u);
  EXPECT_EQ(g.VertexLabel(1), 7u);
}

TEST(GraphTest, AddEdgeIsUndirected) {
  Graph g = MakeTriangle();
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 0));
  EXPECT_EQ(g.NumEdges(), 3u);
  EXPECT_EQ(g.Degree(0), 2u);
}

TEST(GraphTest, SizeIsEdgeCount) {
  Graph g = MakePath(4);
  EXPECT_EQ(g.Size(), 3u);
}

TEST(GraphTest, EdgeListReportsEachEdgeOnce) {
  Graph g = MakeTriangle();
  std::vector<Edge> edges = g.EdgeList();
  ASSERT_EQ(edges.size(), 3u);
  for (const Edge& e : edges) EXPECT_LT(e.u, e.v);
}

TEST(GraphTest, DensityOfTriangleIsOne) {
  EXPECT_DOUBLE_EQ(MakeTriangle().Density(), 1.0);
}

TEST(GraphTest, DensityOfPath) {
  // path of 4 vertices: 2*3 / (4*3) = 0.5
  EXPECT_DOUBLE_EQ(MakePath(4).Density(), 0.5);
}

TEST(GraphTest, SetVertexLabel) {
  Graph g = MakePath(2, 0);
  g.SetVertexLabel(1, 9);
  EXPECT_EQ(g.VertexLabel(1), 9u);
}

TEST(GraphTest, EdgeLabelStored) {
  Graph g;
  g.AddVertex(0);
  g.AddVertex(1);
  g.AddEdge(0, 1, 42);
  EXPECT_EQ(g.EdgeLabel(0, 1), 42u);
  EXPECT_EQ(g.EdgeLabel(1, 0), 42u);
}

TEST(GraphTest, EdgeKeyIsOrderIndependent) {
  Graph g;
  g.AddVertex(7);
  g.AddVertex(3);
  g.AddEdge(0, 1);
  EXPECT_EQ(g.EdgeKey(0, 1), g.EdgeKey(1, 0));
  EXPECT_EQ(g.EdgeKey(0, 1), MakeEdgeLabelKey(3, 7));
}

TEST(MakeEdgeLabelKeyTest, Canonicalises) {
  EXPECT_EQ(MakeEdgeLabelKey(2, 9), MakeEdgeLabelKey(9, 2));
  EXPECT_NE(MakeEdgeLabelKey(2, 9), MakeEdgeLabelKey(2, 8));
}

TEST(LabelMapTest, InternIsIdempotent) {
  LabelMap labels;
  Label c = labels.Intern("C");
  EXPECT_EQ(labels.Intern("C"), c);
  EXPECT_EQ(labels.Name(c), "C");
  EXPECT_EQ(labels.size(), 1u);
}

TEST(LabelMapTest, FindMissingReturnsUnknown) {
  LabelMap labels;
  EXPECT_EQ(labels.Find("Xx"), LabelMap::kUnknown);
  labels.Intern("Xx");
  EXPECT_NE(labels.Find("Xx"), LabelMap::kUnknown);
}

TEST(AlgorithmsTest, IsConnected) {
  EXPECT_TRUE(IsConnected(MakeTriangle()));
  Graph g;
  g.AddVertex(0);
  g.AddVertex(0);
  EXPECT_FALSE(IsConnected(g));
  g.AddEdge(0, 1);
  EXPECT_TRUE(IsConnected(g));
}

TEST(AlgorithmsTest, IsTree) {
  EXPECT_TRUE(IsTree(MakePath(5)));
  EXPECT_FALSE(IsTree(MakeTriangle()));
}

TEST(AlgorithmsTest, ConnectedComponents) {
  Graph g;
  for (int i = 0; i < 4; ++i) g.AddVertex(0);
  g.AddEdge(0, 1);
  g.AddEdge(2, 3);
  std::vector<int> comp = ConnectedComponents(g);
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_EQ(comp[2], comp[3]);
  EXPECT_NE(comp[0], comp[2]);
}

TEST(AlgorithmsTest, BfsOrderVisitsComponent) {
  Graph g = MakePath(5);
  std::vector<VertexId> order = BfsOrder(g, 2);
  EXPECT_EQ(order.size(), 5u);
  EXPECT_EQ(order[0], 2u);
}

TEST(AlgorithmsTest, RandomConnectedSubgraphIsConnectedSubgraph) {
  Rng rng(99);
  Graph g = MakeTriangle();
  for (int trial = 0; trial < 10; ++trial) {
    Graph sub = RandomConnectedSubgraph(g, 2, rng);
    EXPECT_EQ(sub.NumEdges(), 2u);
    EXPECT_TRUE(IsConnected(sub));
  }
}

TEST(AlgorithmsTest, RandomConnectedSubgraphCapsAtGraphSize) {
  Rng rng(1);
  Graph g = MakePath(4);
  Graph sub = RandomConnectedSubgraph(g, 100, rng);
  EXPECT_EQ(sub.NumEdges(), 3u);
}

TEST(AlgorithmsTest, InducedSubgraph) {
  Graph g = MakeTriangle(5, 6, 7);
  Graph sub = InducedSubgraph(g, {0, 1});
  EXPECT_EQ(sub.NumVertices(), 2u);
  EXPECT_EQ(sub.NumEdges(), 1u);
  EXPECT_EQ(sub.VertexLabel(0), 5u);
  EXPECT_EQ(sub.VertexLabel(1), 6u);
}

TEST(AlgorithmsTest, RelabelAllVertices) {
  Graph g = MakeTriangle(1, 2, 3);
  Graph r = RelabelAllVertices(g, 9);
  for (VertexId v = 0; v < r.NumVertices(); ++v) {
    EXPECT_EQ(r.VertexLabel(v), 9u);
  }
  EXPECT_EQ(r.NumEdges(), g.NumEdges());
}

TEST(AlgorithmsTest, StructurallyEqual) {
  EXPECT_TRUE(StructurallyEqual(MakeTriangle(), MakeTriangle()));
  EXPECT_FALSE(StructurallyEqual(MakeTriangle(), MakePath(3)));
  EXPECT_FALSE(StructurallyEqual(MakeTriangle(0, 1, 2),
                                 MakeTriangle(0, 1, 3)));
}

TEST(GraphDatabaseTest, AddAssignsIds) {
  GraphDatabase db;
  GraphId id0 = db.Add(MakeTriangle());
  GraphId id1 = db.Add(MakePath(3));
  EXPECT_EQ(id0, 0u);
  EXPECT_EQ(id1, 1u);
  EXPECT_EQ(db.graph(0).id(), 0u);
  EXPECT_EQ(db.size(), 2u);
}

TEST(GraphDatabaseTest, SubsetReindexes) {
  GraphDatabase db;
  db.Add(MakeTriangle());
  db.Add(MakePath(3));
  db.Add(MakePath(4));
  GraphDatabase subset = db.Subset({2, 0});
  ASSERT_EQ(subset.size(), 2u);
  EXPECT_EQ(subset.graph(0).NumVertices(), 4u);
  EXPECT_EQ(subset.graph(1).NumVertices(), 3u);
  EXPECT_EQ(subset.graph(0).id(), 0u);
}

TEST(GraphDatabaseTest, EdgeLabelSupportCountsGraphsNotEdges) {
  GraphDatabase db;
  // Two edges with the same key in one graph must count once.
  Graph g;
  g.AddVertex(1);
  g.AddVertex(2);
  g.AddVertex(1);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  db.Add(std::move(g));
  db.Add(MakePath(2, 1));  // labels (1,1): different key
  auto support = db.EdgeLabelSupport();
  EXPECT_EQ(support[MakeEdgeLabelKey(1, 2)], 1u);
  EXPECT_EQ(support[MakeEdgeLabelKey(1, 1)], 1u);
}

TEST(GraphDatabaseTest, StatsAggregates) {
  GraphDatabase db;
  db.Add(MakeTriangle(0, 0, 0));
  db.Add(MakePath(5, 0));
  DatabaseStats stats = db.Stats();
  EXPECT_EQ(stats.num_graphs, 2u);
  EXPECT_EQ(stats.total_vertices, 8u);
  EXPECT_EQ(stats.total_edges, 7u);
  EXPECT_EQ(stats.max_vertices, 5u);
  EXPECT_EQ(stats.num_vertex_labels, 1u);
  EXPECT_DOUBLE_EQ(stats.avg_vertices, 4.0);
}

TEST(IoTest, RoundTrip) {
  GraphDatabase db;
  Graph g;
  g.AddVertex(db.labels().Intern("C"));
  g.AddVertex(db.labels().Intern("N"));
  g.AddVertex(db.labels().Intern("C"));
  g.AddEdge(0, 1, 2);
  g.AddEdge(1, 2);
  db.Add(std::move(g));
  db.Add(MakePath(2, db.labels().Intern("O")));

  std::stringstream stream;
  WriteDatabase(db, stream);
  auto loaded = ReadDatabase(stream);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->size(), 2u);
  const Graph& g0 = loaded->graph(0);
  EXPECT_EQ(g0.NumVertices(), 3u);
  EXPECT_EQ(g0.NumEdges(), 2u);
  EXPECT_EQ(g0.EdgeLabel(0, 1), 2u);
  EXPECT_EQ(loaded->labels().Name(g0.VertexLabel(1)), "N");
}

TEST(IoTest, RejectsDanglingEdge) {
  std::stringstream stream("t # 0\nv 0 C\ne 0 5\n");
  EXPECT_FALSE(ReadDatabase(stream).has_value());
}

TEST(IoTest, RejectsEdgeBeforeGraph) {
  std::stringstream stream("e 0 1\n");
  EXPECT_FALSE(ReadDatabase(stream).has_value());
}

TEST(IoTest, SkipsCommentsAndBlankLines) {
  std::stringstream stream("# header\n\nt # 0\nv 0 C\nv 1 C\ne 0 1\n");
  auto loaded = ReadDatabase(stream);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->size(), 1u);
}

TEST(IoTest, RejectsDuplicateEdge) {
  std::stringstream stream("t # 0\nv 0 C\nv 1 C\ne 0 1\ne 1 0\n");
  EXPECT_FALSE(ReadDatabase(stream).has_value());
}

}  // namespace
}  // namespace catapult
