// FlatGraph construction invariants and flat-kernel equivalence (DESIGN.md
// §15): the CSR layout must reproduce the source Graph exactly — labels,
// degrees, insertion-order adjacency, round-tripped edge lists — its binary-
// search lookups must agree with the adjacency scan on every vertex pair,
// and the flat VF2 kernel must return the same verdicts, node-budget
// truncations included, as the reference kernel.

#include <gtest/gtest.h>

#include <algorithm>

#include "src/csg/csg.h"
#include "src/graph/algorithms.h"
#include "src/graph/flat_graph.h"
#include "src/iso/flat_vf2.h"
#include "src/iso/vf2.h"
#include "src/util/rng.h"

namespace catapult {
namespace {

// A deterministic random labelled connected graph for a given seed.
Graph RandomGraph(uint64_t seed, size_t min_v = 5, size_t max_v = 14,
                  size_t num_labels = 4) {
  Rng rng(seed * 2654435761ULL + 17);
  size_t n = min_v + rng.UniformInt(max_v - min_v + 1);
  Graph g;
  g.AddVertex(static_cast<Label>(rng.UniformInt(num_labels)));
  for (size_t v = 1; v < n; ++v) {
    VertexId parent = static_cast<VertexId>(rng.UniformInt(v));
    VertexId child =
        g.AddVertex(static_cast<Label>(rng.UniformInt(num_labels)));
    g.AddEdge(parent, child, static_cast<Label>(rng.UniformInt(2)));
  }
  size_t extra = rng.UniformInt(4);
  for (size_t e = 0; e < extra; ++e) {
    VertexId u = static_cast<VertexId>(rng.UniformInt(n));
    VertexId v = static_cast<VertexId>(rng.UniformInt(n));
    if (u != v && !g.HasEdge(u, v)) {
      g.AddEdge(u, v, static_cast<Label>(rng.UniformInt(2)));
    }
  }
  return g;
}

std::vector<std::tuple<VertexId, VertexId, Label>> SortedEdges(
    const std::vector<Edge>& edges) {
  std::vector<std::tuple<VertexId, VertexId, Label>> out;
  for (const Edge& e : edges) out.emplace_back(e.u, e.v, e.label);
  std::sort(out.begin(), out.end());
  return out;
}

TEST(FlatGraphTest, EmptyGraph) {
  FlatGraph flat = FlatGraph::Build(Graph());
  EXPECT_EQ(flat.NumVertices(), 0u);
  EXPECT_EQ(flat.NumEdges(), 0u);
  FlatGraphView view = flat.View();
  EXPECT_EQ(view.NumVertices(), 0u);
  EXPECT_EQ(view.NumEdges(), 0u);
}

TEST(FlatGraphTest, SingleVertex) {
  Graph g;
  g.AddVertex(7);
  FlatGraphView view;
  FlatGraph flat = FlatGraph::Build(g);
  view = flat.View();
  EXPECT_EQ(view.NumVertices(), 1u);
  EXPECT_EQ(view.NumEdges(), 0u);
  EXPECT_EQ(view.VertexLabel(0), 7u);
  EXPECT_EQ(view.Degree(0), 0u);
  EXPECT_EQ(view.NeighborsBegin(0), view.NeighborsEnd(0));
  EXPECT_FALSE(view.HasEdge(0, 0));
}

TEST(FlatGraphTest, RoundTripPreservesStructure) {
  for (uint64_t seed = 0; seed < 30; ++seed) {
    Graph g = RandomGraph(seed);
    FlatGraph flat = FlatGraph::Build(g);
    FlatGraphView view = flat.View();
    ASSERT_EQ(view.NumVertices(), g.NumVertices());
    ASSERT_EQ(view.NumEdges(), g.NumEdges());

    // Rebuild a Graph from the flat adjacency and compare edge lists.
    Graph rebuilt;
    for (VertexId v = 0; v < g.NumVertices(); ++v) {
      rebuilt.AddVertex(view.VertexLabel(v));
    }
    for (VertexId v = 0; v < g.NumVertices(); ++v) {
      for (const FlatNeighbor* n = view.NeighborsBegin(v);
           n != view.NeighborsEnd(v); ++n) {
        if (v < n->to) rebuilt.AddEdge(v, n->to, n->edge_label);
      }
    }
    EXPECT_EQ(SortedEdges(rebuilt.EdgeList()), SortedEdges(g.EdgeList()));
  }
}

TEST(FlatGraphTest, AdjacencyKeepsInsertionOrder) {
  for (uint64_t seed = 0; seed < 20; ++seed) {
    Graph g = RandomGraph(seed);
    FlatGraphView view;
    FlatGraph flat = FlatGraph::Build(g);
    view = flat.View();
    for (VertexId v = 0; v < g.NumVertices(); ++v) {
      const std::vector<Graph::Neighbor>& ref = g.Neighbors(v);
      ASSERT_EQ(view.Degree(v), ref.size());
      const FlatNeighbor* fn = view.NeighborsBegin(v);
      for (const Graph::Neighbor& n : ref) {
        EXPECT_EQ(fn->to, n.to);
        EXPECT_EQ(fn->edge_label, n.edge_label);
        EXPECT_EQ(fn->to_label, g.VertexLabel(n.to));
        ++fn;
      }
    }
  }
}

TEST(FlatGraphTest, BinarySearchAgreesWithLinearScan) {
  for (uint64_t seed = 0; seed < 20; ++seed) {
    Graph g = RandomGraph(seed);
    FlatGraph flat = FlatGraph::Build(g);
    FlatGraphView view = flat.View();
    for (VertexId u = 0; u < g.NumVertices(); ++u) {
      for (VertexId v = 0; v < g.NumVertices(); ++v) {
        ASSERT_EQ(view.HasEdge(u, v), g.HasEdge(u, v))
            << "seed " << seed << " pair " << u << "," << v;
        if (g.HasEdge(u, v)) {
          EXPECT_EQ(view.EdgeLabel(u, v), g.EdgeLabel(u, v));
        }
      }
    }
  }
}

TEST(FlatGraphTest, NeighborsWithLabelMatchesScan) {
  for (uint64_t seed = 0; seed < 20; ++seed) {
    Graph g = RandomGraph(seed, 5, 14, 3);
    FlatGraph flat = FlatGraph::Build(g);
    FlatGraphView view = flat.View();
    for (VertexId u = 0; u < g.NumVertices(); ++u) {
      for (Label l = 0; l < 4; ++l) {
        std::vector<VertexId> expected;
        for (const Graph::Neighbor& n : g.Neighbors(u)) {
          if (g.VertexLabel(n.to) == l) expected.push_back(n.to);
        }
        std::sort(expected.begin(), expected.end());
        uint32_t first = 0, last = 0;
        view.NeighborsWithLabel(u, l, &first, &last);
        std::vector<VertexId> got;
        for (uint32_t k = first; k < last; ++k) {
          got.push_back(view.adj[view.sorted[k]].to);
        }
        EXPECT_EQ(got, expected) << "seed " << seed << " u=" << u
                                 << " label=" << l;
      }
    }
  }
}

TEST(FlatGraphDatabaseTest, ArenaViewsEqualStandaloneBuilds) {
  std::vector<Graph> graphs;
  for (uint64_t seed = 0; seed < 12; ++seed) {
    graphs.push_back(RandomGraph(seed));
  }
  graphs.push_back(Graph());  // empty graph mid-arena must slice cleanly
  Graph single;
  single.AddVertex(2);
  graphs.push_back(single);

  FlatGraphDatabase arena = FlatGraphDatabase::Build(graphs);
  ASSERT_EQ(arena.size(), graphs.size());
  for (size_t id = 0; id < graphs.size(); ++id) {
    FlatGraph standalone = FlatGraph::Build(graphs[id]);
    FlatGraphView a = arena.view(id);
    FlatGraphView b = standalone.View();
    ASSERT_EQ(a.NumVertices(), b.NumVertices());
    ASSERT_EQ(a.NumEdges(), b.NumEdges());
    for (VertexId v = 0; v < a.NumVertices(); ++v) {
      EXPECT_EQ(a.VertexLabel(v), b.VertexLabel(v));
      ASSERT_EQ(a.Degree(v), b.Degree(v));
      const FlatNeighbor* na = a.NeighborsBegin(v);
      const FlatNeighbor* nb = b.NeighborsBegin(v);
      for (; nb != b.NeighborsEnd(v); ++na, ++nb) {
        EXPECT_EQ(na->to, nb->to);
        EXPECT_EQ(na->to_label, nb->to_label);
        EXPECT_EQ(na->edge_label, nb->edge_label);
      }
      for (VertexId u = 0; u < a.NumVertices(); ++u) {
        EXPECT_EQ(a.HasEdge(v, u), b.HasEdge(v, u));
      }
    }
  }
}

TEST(LabelDomainsTest, DomainsMatchDirectCount) {
  for (uint64_t seed = 0; seed < 20; ++seed) {
    Graph g = RandomGraph(seed);
    FlatGraph flat = FlatGraph::Build(g);
    LabelDomains domains = LabelDomains::Build(flat.View());
    EXPECT_EQ(domains.num_vertices(), g.NumVertices());
    for (Label l = 0; l < 5; ++l) {
      std::vector<VertexId> expected;
      for (VertexId v = 0; v < g.NumVertices(); ++v) {
        if (g.VertexLabel(v) == l) expected.push_back(v);
      }
      EXPECT_EQ(domains.CountOf(l), expected.size());
      const uint64_t* words = domains.Words(l);
      if (expected.empty()) {
        EXPECT_EQ(words, nullptr);
        continue;
      }
      ASSERT_NE(words, nullptr);
      std::vector<VertexId> got;
      for (size_t w = 0; w < domains.words_per_domain(); ++w) {
        uint64_t bits = words[w];
        while (bits != 0) {
          got.push_back(static_cast<VertexId>(
              (w << 6) + static_cast<size_t>(__builtin_ctzll(bits))));
          bits &= bits - 1;
        }
      }
      EXPECT_EQ(got, expected);
    }
  }
}

TEST(LabelDomainsTest, EmptyGraphHasNoDomains) {
  FlatGraph flat = FlatGraph::Build(Graph());
  LabelDomains domains = LabelDomains::Build(flat.View());
  EXPECT_EQ(domains.num_labels(), 0u);
  EXPECT_EQ(domains.Words(0), nullptr);
  EXPECT_EQ(domains.CountOf(0), 0u);
}

TEST(FlatVf2Test, AgreesWithReferenceKernel) {
  Rng rng(99);
  size_t disagreements = 0;
  for (uint64_t seed = 0; seed < 40; ++seed) {
    Graph target = RandomGraph(seed, 6, 14);
    Graph pattern = seed % 3 == 0
                        ? RandomConnectedSubgraph(target, 3 + seed % 4, rng)
                        : RandomGraph(seed + 500, 3, 6);
    FlatGraph flat_pattern = FlatGraph::Build(pattern);
    FlatGraph flat_target = FlatGraph::Build(target);
    LabelDomains domains = LabelDomains::Build(flat_target.View());
    for (bool induced : {false, true}) {
      for (bool match_edge_labels : {false, true}) {
        IsoOptions options;
        options.induced = induced;
        options.match_edge_labels = match_edge_labels;
        bool reference = ContainsSubgraph(pattern, target, options);
        bool flat = FlatContainsSubgraph(flat_pattern.View(),
                                         flat_target.View(), &domains,
                                         options);
        if (reference != flat) ++disagreements;
        EXPECT_EQ(reference, flat)
            << "seed " << seed << " induced=" << induced
            << " edge_labels=" << match_edge_labels;
      }
    }
  }
  EXPECT_EQ(disagreements, 0u);
}

TEST(FlatVf2Test, NullDomainsBuildsOwn) {
  Graph target = RandomGraph(3, 8, 12);
  Rng rng(4);
  Graph pattern = RandomConnectedSubgraph(target, 4, rng);
  FlatGraph flat_pattern = FlatGraph::Build(pattern);
  FlatGraph flat_target = FlatGraph::Build(target);
  EXPECT_TRUE(FlatContainsSubgraph(flat_pattern.View(), flat_target.View(),
                                   nullptr));
}

TEST(FlatVf2Test, BudgetTruncationMatchesReference) {
  // The bit-identity contract extends to truncated searches: both kernels
  // must explore the same number of nodes and truncate at the same point.
  for (uint64_t seed = 0; seed < 15; ++seed) {
    Graph target = RandomGraph(seed, 8, 14);
    Graph pattern = RandomGraph(seed + 300, 3, 6);
    FlatGraph flat_pattern = FlatGraph::Build(pattern);
    FlatGraph flat_target = FlatGraph::Build(target);
    LabelDomains domains = LabelDomains::Build(flat_target.View());
    for (uint64_t budget : {1, 2, 5, 20, 1000}) {
      IsoOptions options;
      options.node_budget = budget;
      bool ref_exhausted = false;
      options.budget_exhausted = &ref_exhausted;
      bool reference = ContainsSubgraph(pattern, target, options);
      bool flat_exhausted = false;
      options.budget_exhausted = &flat_exhausted;
      bool flat = FlatContainsSubgraph(flat_pattern.View(),
                                       flat_target.View(), &domains, options);
      EXPECT_EQ(reference, flat)
          << "seed " << seed << " budget " << budget;
      EXPECT_EQ(ref_exhausted, flat_exhausted)
          << "seed " << seed << " budget " << budget;
    }
  }
}

TEST(FlatVf2Test, SizePrecheckRejectsSilently) {
  Graph small = RandomGraph(1, 3, 4);
  Graph big = RandomGraph(2, 10, 12);
  FlatGraph flat_big = FlatGraph::Build(big);
  FlatGraph flat_small = FlatGraph::Build(small);
  bool exhausted = true;
  IsoOptions options;
  options.budget_exhausted = &exhausted;
  EXPECT_FALSE(FlatContainsSubgraph(flat_big.View(), flat_small.View(),
                                    nullptr, options));
  EXPECT_FALSE(exhausted);  // precheck resets the flag, no search ran
}

TEST(CsgFlatTest, ToFlatMatchesToGraph) {
  Graph a = RandomGraph(11, 5, 8);
  Graph b = RandomGraph(12, 5, 8);
  GraphDatabase db;
  db.Add(a);
  db.Add(b);
  ClusterSummaryGraph csg = BuildCsg(db, {0, 1});
  Graph summary = csg.ToGraph();
  FlatGraph flat = csg.ToFlat();
  FlatGraphView view = flat.View();
  ASSERT_EQ(view.NumVertices(), summary.NumVertices());
  ASSERT_EQ(view.NumEdges(), summary.NumEdges());
  for (VertexId u = 0; u < summary.NumVertices(); ++u) {
    EXPECT_EQ(view.VertexLabel(u), summary.VertexLabel(u));
    for (VertexId v = 0; v < summary.NumVertices(); ++v) {
      EXPECT_EQ(view.HasEdge(u, v), summary.HasEdge(u, v));
    }
  }
}

TEST(FlatGraphTest, MemoryBytesAccountsForArrays) {
  Graph g = RandomGraph(5);
  FlatGraph flat = FlatGraph::Build(g);
  EXPECT_GE(flat.MemoryBytes(),
            g.NumVertices() * sizeof(Label) + 2 * g.NumEdges() * 12);
  FlatGraphDatabase arena = FlatGraphDatabase::Build(std::vector<Graph>{g});
  EXPECT_GE(arena.MemoryBytes(), flat.MemoryBytes() / 2);
}

}  // namespace
}  // namespace catapult
