// Cross-module invariants: monotonicity and consistency properties that
// connect independently implemented components.

#include <gtest/gtest.h>

#include "src/csg/csg.h"
#include "src/data/molecule_generator.h"
#include "src/formulate/evaluate.h"
#include "src/iso/mcs.h"
#include "src/search/search_engine.h"
#include "src/graph/algorithms.h"

namespace catapult {
namespace {

class InvariantProperty : public ::testing::TestWithParam<int> {};

TEST_P(InvariantProperty, CsgCompactnessIsMonotoneInThreshold) {
  uint64_t seed = static_cast<uint64_t>(GetParam());
  MoleculeGeneratorOptions gen;
  gen.num_graphs = 12;
  gen.scaffold_families = 1 + seed % 4;
  gen.seed = 700 + seed;
  GraphDatabase db = GenerateMoleculeDatabase(gen);
  std::vector<GraphId> cluster;
  for (GraphId i = 0; i < db.size(); ++i) cluster.push_back(i);
  ClusterSummaryGraph csg = BuildCsg(db, cluster);
  double previous = 1.0;
  for (double t : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    double xi = csg.Compactness(t);
    EXPECT_LE(xi, previous + 1e-12) << "xi must fall as t rises";
    EXPECT_GE(xi, 0.0);
    EXPECT_LE(xi, 1.0);
    previous = xi;
  }
}

TEST_P(InvariantProperty, McsBudgetMonotonicity) {
  uint64_t seed = static_cast<uint64_t>(GetParam());
  MoleculeGeneratorOptions gen;
  gen.num_graphs = 2;
  gen.min_vertices = 8;
  gen.max_vertices = 14;
  gen.seed = 800 + seed;
  GraphDatabase db = GenerateMoleculeDatabase(gen);
  const Graph& a = db.graph(0);
  const Graph& b = db.graph(1);
  size_t previous = 0;
  for (uint64_t budget : {500u, 5000u, 50000u}) {
    McsOptions options;
    options.node_budget = budget;
    McsResult r = MaxCommonSubgraph(a, b, options);
    EXPECT_GE(r.common_edges, previous)
        << "anytime result must not degrade with a larger budget";
    previous = r.common_edges;
  }
}

TEST_P(InvariantProperty, SearchEngineAgreesWithSubgraphCoverage) {
  uint64_t seed = static_cast<uint64_t>(GetParam());
  MoleculeGeneratorOptions gen;
  gen.num_graphs = 30;
  gen.seed = 900 + seed;
  GraphDatabase db = GenerateMoleculeDatabase(gen);
  SubgraphSearchEngine engine(db);
  Rng rng(1000 + seed);
  std::vector<Graph> patterns;
  for (int i = 0; i < 3; ++i) {
    Graph p = RandomConnectedSubgraph(
        db.graph(static_cast<GraphId>(rng.UniformInt(db.size()))),
        3 + rng.UniformInt(3), rng);
    if (p.NumEdges() > 0) patterns.push_back(std::move(p));
  }
  // Full-scan coverage (sample_cap = 0) must equal index-based coverage.
  EXPECT_DOUBLE_EQ(SubgraphCoverage(patterns, db, 0),
                   ExactSubgraphCoverage(engine, patterns));
}

TEST_P(InvariantProperty, McsOfSubgraphIsTheSubgraph) {
  // For p subgraph-of g, the MCCS of (p, g) is all of p.
  uint64_t seed = static_cast<uint64_t>(GetParam());
  MoleculeGeneratorOptions gen;
  gen.num_graphs = 1;
  gen.min_vertices = 10;
  gen.max_vertices = 16;
  gen.seed = 1100 + seed;
  GraphDatabase db = GenerateMoleculeDatabase(gen);
  const Graph& g = db.graph(0);
  Rng rng(1200 + seed);
  Graph p = RandomConnectedSubgraph(g, 4, rng);
  if (p.NumEdges() == 0) return;
  McsOptions options;
  options.node_budget = 200000;
  McsResult r = MaxCommonSubgraph(p, g, options);
  if (r.exact) {
    EXPECT_EQ(r.common_edges, p.NumEdges());
    EXPECT_DOUBLE_EQ(McsSimilarity(p, g, options), 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, InvariantProperty, ::testing::Range(0, 10));

}  // namespace
}  // namespace catapult
