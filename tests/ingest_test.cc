// Tests of resource-governed ingestion (DESIGN.md Section 9): the
// MemoryBudget ledger, the hardened streaming parser with its structural
// limits and quarantine mode, and the pipeline's degradation behaviour when
// the budget tightens. The adversarial inputs here mirror the fuzz corpus:
// degree bombs, label bombs, truncated files, NUL bytes, and overlong lines
// must all land as quarantined records or structured errors, never crashes.

#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>
#include <string>

#include "src/core/catapult.h"
#include "src/data/molecule_generator.h"
#include "src/graph/io.h"
#include "src/util/deadline.h"
#include "src/util/failpoint.h"
#include "src/util/mem_budget.h"

namespace catapult {
namespace {

class IngestTest : public ::testing::Test {
 protected:
  void TearDown() override { failpoint::DisarmAll(); }
};

GraphDatabase SmallDb(uint64_t seed = 17, size_t n = 50) {
  MoleculeGeneratorOptions gen;
  gen.num_graphs = n;
  gen.min_vertices = 8;
  gen.max_vertices = 16;
  gen.seed = seed;
  return GenerateMoleculeDatabase(gen);
}

CatapultOptions FastOptions() {
  CatapultOptions options;
  options.selector.budget.eta_min = 3;
  options.selector.budget.eta_max = 6;
  options.selector.budget.gamma = 6;
  options.selector.walks_per_candidate = 8;
  options.clustering.max_cluster_size = 12;
  options.clustering.fine_mcs.node_budget = 3000;
  options.seed = 99;
  return options;
}

// Parses `text` in quarantine mode under `options`, asserting the read
// itself never fails (quarantine mode always yields a database).
GraphDatabase ParseQuarantine(const std::string& text, IngestOptions options,
                              IngestReport* report) {
  std::istringstream in(text);
  auto db = ReadDatabase(in, options, report);
  EXPECT_TRUE(db.has_value());
  return db.has_value() ? std::move(*db) : GraphDatabase();
}

// ---------------------------------------------------------------------------
// MemoryBudget ledger.

TEST_F(IngestTest, UnlimitedBudgetTracksButNeverRefuses) {
  MemoryBudget budget;
  EXPECT_FALSE(budget.limited());
  EXPECT_TRUE(budget.TryCharge(size_t{1} << 40, "test"));
  EXPECT_EQ(budget.used(), size_t{1} << 40);
  EXPECT_EQ(budget.peak(), size_t{1} << 40);
  EXPECT_FALSE(budget.SoftExceeded());
  EXPECT_FALSE(budget.HardBreached());
  budget.Release(size_t{1} << 40);
  EXPECT_EQ(budget.used(), 0u);
  EXPECT_EQ(budget.peak(), size_t{1} << 40);  // peak is a high-water mark
}

TEST_F(IngestTest, HardLimitRefusesAndLatchesError) {
  MemoryBudget budget = MemoryBudget::Limited(0, 1000);
  EXPECT_EQ(budget.soft_limit(), 750u);  // defaults to 3/4 of hard
  EXPECT_TRUE(budget.TryCharge(900, "phase.a"));
  EXPECT_TRUE(budget.SoftExceeded());
  EXPECT_FALSE(budget.HardBreached());
  EXPECT_FALSE(budget.TryCharge(200, "phase.b"));
  EXPECT_TRUE(budget.HardBreached());
  EXPECT_EQ(budget.used(), 900u);  // refused charge left the ledger alone
  ResourceError error = budget.error();
  EXPECT_EQ(error.site, "phase.b");
  EXPECT_EQ(error.requested, 200u);
  EXPECT_EQ(error.hard_limit, 1000u);
  EXPECT_NE(error.ToString().find("phase.b"), std::string::npos);
  // The breach is sticky even after a release frees room.
  budget.Release(900);
  EXPECT_TRUE(budget.HardBreached());
  // The first error is the one retained.
  EXPECT_FALSE(budget.TryCharge(5000, "phase.c"));
  EXPECT_EQ(budget.error().site, "phase.b");
}

TEST_F(IngestTest, CopiesShareTheLedger) {
  MemoryBudget budget = MemoryBudget::Limited(0, 1000);
  MemoryBudget copy = budget;
  EXPECT_TRUE(copy.TryCharge(800, "a"));
  EXPECT_EQ(budget.used(), 800u);
  EXPECT_FALSE(budget.TryCharge(300, "b"));
  EXPECT_TRUE(copy.HardBreached());
}

TEST_F(IngestTest, ScopedChargeReleasesOnExit) {
  MemoryBudget budget = MemoryBudget::Limited(0, 1000);
  {
    ScopedMemoryCharge charge(budget, 600, "scoped");
    EXPECT_TRUE(charge.ok());
    EXPECT_EQ(budget.used(), 600u);
  }
  EXPECT_EQ(budget.used(), 0u);
  {
    ScopedMemoryCharge charge(budget, 2000, "scoped");
    EXPECT_FALSE(charge.ok());
    EXPECT_EQ(budget.used(), 0u);
  }
  EXPECT_EQ(budget.used(), 0u);  // refused charge releases nothing
}

TEST_F(IngestTest, FailpointInjectsAllocationFailure) {
  MemoryBudget budget;  // unlimited — only the failpoint can refuse
  failpoint::ScopedFailpoint fp("mem.charge", 1);
  EXPECT_FALSE(budget.TryCharge(8, "anything"));
  EXPECT_TRUE(budget.HardBreached());
  EXPECT_TRUE(budget.TryCharge(8, "anything"));  // fires once
}

TEST_F(IngestTest, HardBreachTripsRunContextStop) {
  MemoryBudget budget = MemoryBudget::Limited(0, 100);
  RunContext ctx = RunContext::NoLimit().WithMemory(budget);
  EXPECT_FALSE(ctx.StopRequested("test.site"));
  EXPECT_FALSE(budget.TryCharge(200, "test.site"));
  EXPECT_TRUE(ctx.StopRequested("test.site"));
}

// ---------------------------------------------------------------------------
// Quarantine-mode parsing of adversarial input.

TEST_F(IngestTest, DegreeBombIsQuarantinedAndIngestionContinues) {
  std::string text = "t # 0\nv 0 C\nv 1 O\ne 0 1 0\n";
  text += "t # 1\n";  // the bomb: more vertices than the limit admits
  for (int i = 0; i < 100; ++i) {
    text += "v " + std::to_string(i) + " C\n";
  }
  text += "t # 2\nv 0 N\nv 1 C\ne 0 1 0\n";

  IngestOptions options;
  options.limits.max_vertices_per_graph = 16;
  IngestReport report;
  GraphDatabase db = ParseQuarantine(text, options, &report);
  EXPECT_EQ(db.size(), 2u);
  EXPECT_EQ(report.graphs_ingested, 2u);
  EXPECT_EQ(report.graphs_quarantined, 1u);
  ASSERT_EQ(report.quarantined_indices.size(), 1u);
  EXPECT_EQ(report.quarantined_indices[0], 1u);  // input-order index
  ASSERT_FALSE(report.quarantine_reasons.empty());
  EXPECT_EQ(report.quarantine_reasons[0].first, "vertex limit exceeded");
  EXPECT_NE(report.quarantine_digest, 0u);
  EXPECT_NE(report.Summary().find("quarantined 1"), std::string::npos);
}

TEST_F(IngestTest, EdgeBombIsQuarantined) {
  std::string text = "t # 0\n";
  for (int i = 0; i < 20; ++i) text += "v " + std::to_string(i) + " C\n";
  for (int u = 0; u < 20; ++u) {
    for (int v = u + 1; v < 20; ++v) {
      text += "e " + std::to_string(u) + " " + std::to_string(v) + " 0\n";
    }
  }
  text += "t # 1\nv 0 C\nv 1 C\ne 0 1 0\n";

  IngestOptions options;
  options.limits.max_edges_per_graph = 32;
  IngestReport report;
  GraphDatabase db = ParseQuarantine(text, options, &report);
  EXPECT_EQ(db.size(), 1u);
  EXPECT_EQ(report.graphs_quarantined, 1u);
  EXPECT_EQ(report.quarantine_reasons[0].first, "edge limit exceeded");
}

TEST_F(IngestTest, LabelBombDoesNotPolluteTheLabelMap) {
  // One graph tries to intern more distinct labels than the database-wide
  // limit allows; it must be quarantined WITHOUT leaking its labels into
  // the shared LabelMap.
  std::string text = "t # 0\nv 0 C\nv 1 O\ne 0 1 0\n";
  text += "t # 1\n";
  for (int i = 0; i < 64; ++i) {
    text += "v " + std::to_string(i) + " L" + std::to_string(i) + "\n";
  }
  text += "t # 2\nv 0 C\nv 1 O\ne 0 1 0\n";

  IngestOptions options;
  options.limits.max_labels = 8;
  IngestReport report;
  GraphDatabase db = ParseQuarantine(text, options, &report);
  EXPECT_EQ(db.size(), 2u);
  EXPECT_EQ(report.graphs_quarantined, 1u);
  EXPECT_EQ(report.quarantine_reasons[0].first, "vertex label limit exceeded");
  // Only "C" and "O" were interned; the bomb's 64 labels never landed.
  EXPECT_EQ(db.labels().size(), 2u);
}

TEST_F(IngestTest, OverlongLineIsDiscardedNotBuffered) {
  // A "100MB line" attack, scaled down: the line is discarded unread past
  // the bound, the enclosing graph is quarantined, and parsing continues
  // with the next graph.
  std::string text = "t # 0\nv 0 ";
  text += std::string(1 << 16, 'X');  // far past max_line_bytes
  text += "\nt # 1\nv 0 C\n";

  IngestOptions options;
  options.limits.max_line_bytes = 256;
  IngestReport report;
  GraphDatabase db = ParseQuarantine(text, options, &report);
  EXPECT_EQ(db.size(), 1u);
  EXPECT_EQ(report.graphs_quarantined, 1u);
  EXPECT_EQ(report.quarantine_reasons[0].first, "line exceeds max_line_bytes");
}

TEST_F(IngestTest, NulByteIsQuarantined) {
  std::string text = "t # 0\nv 0 C\nv 1 ";
  text += '\0';
  text += "O\ne 0 1 0\nt # 1\nv 0 C\n";

  IngestReport report;
  GraphDatabase db = ParseQuarantine(text, IngestOptions(), &report);
  EXPECT_EQ(db.size(), 1u);
  EXPECT_EQ(report.graphs_quarantined, 1u);
  EXPECT_EQ(report.quarantine_reasons[0].first, "NUL byte in record");
}

TEST_F(IngestTest, TruncatedFileCommitsTheCompletePrefix) {
  // Input ends mid-record: the truncated 'v' line is malformed, the last
  // graph is quarantined, and the complete graphs before it survive.
  std::string text = "t # 0\nv 0 C\nv 1 O\ne 0 1 0\nt # 1\nv 0 ";
  IngestReport report;
  GraphDatabase db = ParseQuarantine(text, IngestOptions(), &report);
  EXPECT_EQ(db.size(), 1u);
  EXPECT_EQ(report.graphs_quarantined, 1u);
}

TEST_F(IngestTest, StructuralViolationsAreQuarantinedPerReason) {
  std::string text;
  text += "t # 0\nv 0 C\nv 1 C\ne 0 1 0\ne 0 1 0\n";  // duplicate edge
  text += "t # 1\nv 0 C\ne 0 0 0\n";                  // self loop
  text += "t # 2\nv 0 C\ne 0 5 0\n";                  // dangling endpoint
  text += "t # 3\nv 2 C\n";                           // non-dense vertex id
  text += "t # 4\nq nonsense\n";                      // unknown record type
  text += "t # 5\nv 0 C\nv 1 O\ne 0 1 0\n";           // fine

  IngestReport report;
  GraphDatabase db = ParseQuarantine(text, IngestOptions(), &report);
  EXPECT_EQ(db.size(), 1u);
  EXPECT_EQ(report.graphs_quarantined, 5u);
  EXPECT_EQ(report.quarantine_reasons.size(), 5u);
  EXPECT_EQ(report.quarantined_indices.size(), 5u);
}

TEST_F(IngestTest, MaxGraphsStopsEarly) {
  std::string text;
  for (int g = 0; g < 10; ++g) {
    text += "t # " + std::to_string(g) + "\nv 0 C\nv 1 O\ne 0 1 0\n";
  }
  IngestOptions options;
  options.limits.max_graphs = 3;
  IngestReport report;
  GraphDatabase db = ParseQuarantine(text, options, &report);
  EXPECT_EQ(db.size(), 3u);
  EXPECT_TRUE(report.stopped_early);
  EXPECT_NE(report.stop_reason.find("max_graphs"), std::string::npos);
}

TEST_F(IngestTest, MemoryBudgetBreachStopsIngestionWithPartialDatabase) {
  std::string text;
  for (int g = 0; g < 50; ++g) {
    text += "t # " + std::to_string(g) + "\n";
    for (int i = 0; i < 10; ++i) {
      text += "v " + std::to_string(i) + " C\n";
    }
    for (int i = 0; i + 1 < 10; ++i) {
      text += "e " + std::to_string(i) + " " + std::to_string(i + 1) + " 0\n";
    }
  }
  IngestOptions options;
  options.memory = MemoryBudget::Limited(0, 4096);  // a few graphs' worth
  IngestReport report;
  GraphDatabase db = ParseQuarantine(text, options, &report);
  EXPECT_GT(db.size(), 0u);
  EXPECT_LT(db.size(), 50u);
  EXPECT_TRUE(report.stopped_early);
  EXPECT_TRUE(report.mem_breached);
  EXPECT_EQ(report.resource_error.site, "ingest.graph");
  EXPECT_GT(report.mem_peak_bytes, 0u);
}

TEST_F(IngestTest, RoundTripThroughWriterStaysClean) {
  GraphDatabase db = SmallDb(5, 20);
  std::ostringstream out;
  WriteDatabase(db, out);
  IngestReport report;
  GraphDatabase reread = ParseQuarantine(out.str(), IngestOptions(), &report);
  EXPECT_EQ(reread.size(), db.size());
  EXPECT_EQ(report.graphs_quarantined, 0u);
  EXPECT_EQ(report.quarantine_digest, 0u);
  EXPECT_FALSE(report.stopped_early);
}

// ---------------------------------------------------------------------------
// Strict mode and ParseError diagnostics.

TEST_F(IngestTest, StrictModeFailsOnFirstViolationWithGraphIndex) {
  std::string text = "t # 0\nv 0 C\nv 1 O\ne 0 1 0\n";
  text += "t # 1\nv 0 C\n";
  text += "t # 2\nv 0 C\ne 0 7 0\n";  // line 9: dangling endpoint

  std::istringstream in(text);
  IngestOptions options;
  options.strict = true;
  ParseError error;
  auto db = ReadDatabase(in, options, nullptr, &error);
  EXPECT_FALSE(db.has_value());
  EXPECT_EQ(error.graph_index, 2u);
  EXPECT_EQ(error.line, 9u);
  EXPECT_NE(error.message.find("out of range"), std::string::npos);
}

TEST_F(IngestTest, LegacyStrictReaderStillRejectsMalformedInput) {
  std::istringstream in("t # 0\nv 0 C\ne 0 0 0\n");
  ParseError error;
  auto db = ReadDatabase(in, &error);
  EXPECT_FALSE(db.has_value());
  EXPECT_NE(error.message.find("self-loop"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Quarantine digest and checkpoint fingerprint compatibility.

TEST_F(IngestTest, QuarantineDigestIsStableAndDiscriminates) {
  std::string bomb = "t # 1\n";
  for (int i = 0; i < 50; ++i) bomb += "v " + std::to_string(i) + " C\n";
  std::string good = "t # 0\nv 0 C\nv 1 O\ne 0 1 0\n";
  std::string tail = "t # 2\nv 0 N\nv 1 C\ne 0 1 0\n";

  IngestOptions options;
  options.limits.max_vertices_per_graph = 16;

  IngestReport with_bomb1, with_bomb2, clean;
  ParseQuarantine(good + bomb + tail, options, &with_bomb1);
  ParseQuarantine(good + bomb + tail, options, &with_bomb2);
  ParseQuarantine(good + tail, options, &clean);

  EXPECT_EQ(with_bomb1.quarantine_digest, with_bomb2.quarantine_digest);
  EXPECT_NE(with_bomb1.quarantine_digest, 0u);
  EXPECT_EQ(clean.quarantine_digest, 0u);
}

TEST_F(IngestTest, IngestDigestChangesTheConfigFingerprint) {
  GraphDatabase db = SmallDb(7, 12);
  CatapultOptions options = FastOptions();
  uint64_t clean = ConfigFingerprint(options, db);
  options.ingest_digest = 0x9E3779B97F4A7C15ULL;
  uint64_t quarantined = ConfigFingerprint(options, db);
  EXPECT_NE(clean, quarantined);
  // Memory limits, like the deadline, do NOT change the fingerprint:
  // resuming under a different resource budget is the expected use.
  options.mem_hard_limit_bytes = 64u << 20;
  EXPECT_EQ(ConfigFingerprint(options, db), quarantined);
}

TEST_F(IngestTest, ResumeWithQuarantinedGraphsIsBitIdentical) {
  // A database whose file contains one quarantined graph: mining fresh and
  // mining with --resume from a checkpoint must agree bit-for-bit, because
  // the quarantine digest pins the dense graph-id space the checkpoint
  // indexes into.
  GraphDatabase gen = SmallDb(11, 25);
  std::ostringstream out;
  WriteDatabase(gen, out);
  std::string bomb = "t # 99\n";
  for (int i = 0; i < 200; ++i) bomb += "v " + std::to_string(i) + " C\n";
  std::string text = out.str() + bomb;

  IngestOptions ingest;
  ingest.limits.max_vertices_per_graph = 64;
  IngestReport report;
  GraphDatabase db = ParseQuarantine(text, ingest, &report);
  EXPECT_EQ(report.graphs_quarantined, 1u);

  std::string dir = ::testing::TempDir() + "catapult_ingest_resume";
  std::filesystem::remove_all(dir);

  CatapultOptions options = FastOptions();
  options.ingest_digest = report.quarantine_digest;
  options.checkpoint_dir = dir;
  CatapultResult fresh = RunCatapult(db, options);
  ASSERT_TRUE(fresh.ok());

  options.resume = true;
  CatapultResult resumed = RunCatapult(db, options);
  ASSERT_TRUE(resumed.ok());
  EXPECT_TRUE(resumed.execution.Resumed());
  ASSERT_EQ(resumed.selection.patterns.size(),
            fresh.selection.patterns.size());
  for (size_t i = 0; i < fresh.selection.patterns.size(); ++i) {
    EXPECT_EQ(resumed.selection.patterns[i].score,
              fresh.selection.patterns[i].score);
    EXPECT_EQ(resumed.selection.patterns[i].graph.NumEdges(),
              fresh.selection.patterns[i].graph.NumEdges());
  }

  // A different quarantine outcome (different digest) must reject the
  // checkpoints and cold-start rather than silently mis-index clusters.
  options.ingest_digest ^= 0xDEADBEEF;
  CatapultResult mismatched = RunCatapult(db, options);
  ASSERT_TRUE(mismatched.ok());
  EXPECT_FALSE(mismatched.execution.Resumed());

  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Pipeline degradation under a memory budget.

TEST_F(IngestTest, UnbudgetedRunReportsNoMemoryGovernance) {
  GraphDatabase db = SmallDb(19, 20);
  CatapultResult result = RunCatapult(db, FastOptions());
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result.execution.mem_budget_set);
  EXPECT_FALSE(result.execution.mem_hard_breached);
}

TEST_F(IngestTest, GenerousBudgetRunsCleanAndReportsPeak) {
  GraphDatabase db = SmallDb(23, 30);
  CatapultOptions options = FastOptions();
  options.mem_hard_limit_bytes = 64u << 20;
  CatapultResult result = RunCatapult(db, options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.execution.mem_budget_set);
  EXPECT_EQ(result.execution.mem_hard_limit, 64u << 20);
  EXPECT_FALSE(result.execution.mem_hard_breached);
  EXPECT_GT(result.execution.mem_peak_bytes, 0u);
  EXPECT_FALSE(result.selection.patterns.empty());
  // Bit-identical to the unbudgeted run: governance that never fires must
  // be invisible in the output.
  CatapultResult plain = RunCatapult(db, FastOptions());
  ASSERT_EQ(result.selection.patterns.size(), plain.selection.patterns.size());
  for (size_t i = 0; i < plain.selection.patterns.size(); ++i) {
    EXPECT_EQ(result.selection.patterns[i].score,
              plain.selection.patterns[i].score);
  }
}

TEST_F(IngestTest, TightBudgetDegradesButStillYieldsPatterns) {
  GraphDatabase db = SmallDb(29, 60);
  CatapultOptions options = FastOptions();
  // Tight enough that the feature matrix / CSG charges breach it.
  options.mem_hard_limit_bytes = 64u << 10;  // 64 KB
  CatapultResult result = RunCatapult(db, options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.execution.mem_budget_set);
  // The run must degrade gracefully, never abort — and still hand back a
  // non-empty panel (fallback patterns at worst).
  EXPECT_FALSE(result.selection.patterns.empty());
  if (result.execution.mem_hard_breached) {
    EXPECT_TRUE(result.execution.Degraded());
    EXPECT_FALSE(result.execution.resource_error.site.empty());
  }
}

TEST_F(IngestTest, InjectedFeatureChargeFailureDegradesClustering) {
  GraphDatabase db = SmallDb(31, 40);
  CatapultOptions options = FastOptions();
  options.mem_hard_limit_bytes = 256u << 20;  // generous: only the
                                              // failpoint refuses
  failpoint::ScopedFailpoint fp("mem.features");
  CatapultResult result = RunCatapult(db, options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.execution.mem_hard_breached);
  EXPECT_TRUE(result.execution.Degraded());
  EXPECT_FALSE(result.selection.patterns.empty());
  EXPECT_EQ(result.execution.resource_error.site, "mem.features");
}

TEST_F(IngestTest, SoftPressureShedsFineClustering) {
  GraphDatabase db = SmallDb(37, 40);
  // A shared ledger already holding more than the soft limit (e.g. the
  // serving process's other tenants): every phase observes pressure from
  // the start, but the huge hard limit means nothing is ever refused.
  MemoryBudget budget = MemoryBudget::Limited(1, size_t{1} << 40);
  ASSERT_TRUE(budget.TryCharge(4096, "test.pin"));
  RunContext ctx = RunContext::NoLimit().WithMemory(budget);
  CatapultResult result = RunCatapult(db, FastOptions(), ctx);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.execution.mem_budget_set);
  EXPECT_FALSE(result.execution.mem_hard_breached);
  EXPECT_TRUE(result.execution.mem_soft_exceeded);
  // The ladder's coarse-only rung: fine splitting was shed, yet the run
  // still produces a usable panel.
  EXPECT_TRUE(result.execution.clustering_coarse_only);
  EXPECT_FALSE(result.selection.patterns.empty());
}

}  // namespace
}  // namespace catapult
