// Tests of the durability layer (DESIGN.md Section 8): atomic file writes,
// the checksummed record format, the checkpoint store and its recovery
// ladder, options validation, and end-to-end kill/resume runs that must
// reproduce the uninterrupted pipeline bit-identically. Corruption is
// injected two ways: failpoints on the write/read paths and direct surgery
// on the checkpoint files.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "src/core/catapult.h"
#include "src/data/molecule_generator.h"
#include "src/graph/io.h"
#include "src/persist/checkpoint.h"
#include "src/persist/record_io.h"
#include "src/util/atomic_file.h"
#include "src/util/failpoint.h"
#include "src/util/rng.h"

namespace catapult {
namespace {

using persist::BinaryReader;
using persist::BinaryWriter;
using persist::RecordType;

class PersistTest : public ::testing::Test {
 protected:
  void TearDown() override { failpoint::DisarmAll(); }

  // A fresh, empty scratch directory unique to (test, name).
  std::string ScratchDir(const std::string& name) {
    std::string dir = ::testing::TempDir() + "catapult_persist_" +
                      ::testing::UnitTest::GetInstance()
                          ->current_test_info()
                          ->name() +
                      "_" + name;
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    return dir;
  }
};

GraphDatabase SmallDb(uint64_t seed = 31, size_t n = 40) {
  MoleculeGeneratorOptions gen;
  gen.num_graphs = n;
  gen.min_vertices = 8;
  gen.max_vertices = 14;
  gen.seed = seed;
  return GenerateMoleculeDatabase(gen);
}

CatapultOptions FastOptions() {
  CatapultOptions options;
  options.selector.budget.eta_min = 3;
  options.selector.budget.eta_max = 6;
  options.selector.budget.gamma = 6;
  options.selector.walks_per_candidate = 8;
  options.clustering.max_cluster_size = 10;
  options.clustering.fine_mcs.node_budget = 3000;
  options.seed = 99;
  return options;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  return bytes;
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// Flips one bit of the byte at `offset` in `path`.
void FlipByteAt(const std::string& path, size_t offset) {
  std::string bytes = ReadFileBytes(path);
  ASSERT_LT(offset, bytes.size());
  bytes[offset] ^= 0x04;
  WriteFileBytes(path, bytes);
}

std::string CheckpointPath(const std::string& dir, RecordType type) {
  return dir + "/" + CheckpointStore::FileNameFor(type);
}

bool HasEvent(const std::vector<CheckpointEvent>& events,
              CheckpointEvent::Kind kind, const std::string& phase) {
  for (const CheckpointEvent& e : events) {
    if (e.kind == kind && e.phase == phase) return true;
  }
  return false;
}

// The acceptance bar for resume: the panel must match the uninterrupted
// run bit-for-bit, scores included.
void ExpectSamePanel(const CatapultResult& expected,
                     const CatapultResult& actual) {
  ASSERT_EQ(expected.selection.patterns.size(),
            actual.selection.patterns.size());
  for (size_t i = 0; i < expected.selection.patterns.size(); ++i) {
    const SelectedPattern& a = expected.selection.patterns[i];
    const SelectedPattern& b = actual.selection.patterns[i];
    EXPECT_EQ(a.graph.DebugString(), b.graph.DebugString()) << "pattern " << i;
    EXPECT_EQ(a.score, b.score) << "pattern " << i;
    EXPECT_EQ(a.ccov, b.ccov) << "pattern " << i;
    EXPECT_EQ(a.lcov, b.lcov) << "pattern " << i;
    EXPECT_EQ(a.div, b.div) << "pattern " << i;
    EXPECT_EQ(a.cog, b.cog) << "pattern " << i;
    EXPECT_EQ(a.fallback, b.fallback) << "pattern " << i;
  }
}

// ---------------------------------------------------------------------------
// CRC32 and the binary codec.

TEST_F(PersistTest, Crc32KnownVector) {
  // The standard IEEE 802.3 check value.
  EXPECT_EQ(persist::Crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(persist::Crc32("", 0), 0u);
}

TEST_F(PersistTest, BinaryCodecRoundTrip) {
  BinaryWriter out;
  out.PutU8(7);
  out.PutU32(0xDEADBEEFu);
  out.PutU64(uint64_t{1} << 50);
  out.PutDouble(-0.1);
  out.PutString("hello");
  DynamicBitset bits(10);
  bits.Set(2);
  bits.Set(9);
  out.PutBitset(bits);

  BinaryReader in(out.buffer());
  EXPECT_EQ(in.GetU8(), 7);
  EXPECT_EQ(in.GetU32(), 0xDEADBEEFu);
  EXPECT_EQ(in.GetU64(), uint64_t{1} << 50);
  EXPECT_EQ(in.GetDouble(), -0.1);
  EXPECT_EQ(in.GetString(), "hello");
  DynamicBitset back = in.GetBitset();
  EXPECT_EQ(back.size(), 10u);
  EXPECT_TRUE(back.Test(2));
  EXPECT_TRUE(back.Test(9));
  EXPECT_TRUE(in.ok());
  EXPECT_TRUE(in.AtEnd());
}

TEST_F(PersistTest, BinaryReaderStickyFailureOnTruncation) {
  BinaryWriter out;
  out.PutU64(123);
  std::string truncated = out.buffer().substr(0, 3);
  BinaryReader in(truncated);
  EXPECT_EQ(in.GetU64(), 0u);  // out of bounds -> zero, not a crash
  EXPECT_FALSE(in.ok());
  EXPECT_EQ(in.GetU32(), 0u);  // stays failed
  EXPECT_EQ(in.GetString(), "");
  EXPECT_FALSE(in.ok());
}

TEST_F(PersistTest, BinaryReaderRejectsHostileBitset) {
  // count > universe would otherwise read far out of bounds.
  BinaryWriter out;
  out.PutU64(4);        // universe
  out.PutU64(1000000);  // claimed count
  BinaryReader in(out.buffer());
  (void)in.GetBitset();
  EXPECT_FALSE(in.ok());
}

// ---------------------------------------------------------------------------
// Record files.

TEST_F(PersistTest, RecordFileRoundTrip) {
  std::string dir = ScratchDir("rt");
  std::string path = dir + "/r.ckpt";
  ASSERT_EQ(persist::WriteRecordFile(path, RecordType::kClustering, 42,
                                     "payload bytes"),
            "");
  std::string payload;
  EXPECT_EQ(persist::ReadRecordFile(path, RecordType::kClustering, 42,
                                    &payload),
            "");
  EXPECT_EQ(payload, "payload bytes");
}

TEST_F(PersistTest, RecordFileRejectsWrongTypeAndFingerprint) {
  std::string dir = ScratchDir("wrong");
  std::string path = dir + "/r.ckpt";
  ASSERT_EQ(persist::WriteRecordFile(path, RecordType::kCsgs, 42, "x"), "");
  std::string payload;
  std::string error =
      persist::ReadRecordFile(path, RecordType::kSelection, 42, &payload);
  EXPECT_NE(error.find("type mismatch"), std::string::npos) << error;
  error = persist::ReadRecordFile(path, RecordType::kCsgs, 43, &payload);
  EXPECT_NE(error.find("fingerprint mismatch"), std::string::npos) << error;
}

TEST_F(PersistTest, RecordFileDetectsSurgery) {
  std::string dir = ScratchDir("surgery");
  std::string path = dir + "/r.ckpt";
  std::string body(100, 'a');
  ASSERT_EQ(persist::WriteRecordFile(path, RecordType::kCsgs, 7, body), "");
  std::string payload;

  // Bit flip in the payload.
  FlipByteAt(path, 60);
  EXPECT_EQ(persist::ReadRecordFile(path, RecordType::kCsgs, 7, &payload),
            "payload checksum mismatch");

  // Bit flip in the header.
  ASSERT_EQ(persist::WriteRecordFile(path, RecordType::kCsgs, 7, body), "");
  FlipByteAt(path, 12);
  EXPECT_EQ(persist::ReadRecordFile(path, RecordType::kCsgs, 7, &payload),
            "header checksum mismatch");

  // Truncation.
  ASSERT_EQ(persist::WriteRecordFile(path, RecordType::kCsgs, 7, body), "");
  std::string bytes = ReadFileBytes(path);
  WriteFileBytes(path, bytes.substr(0, bytes.size() - 10));
  EXPECT_EQ(persist::ReadRecordFile(path, RecordType::kCsgs, 7, &payload),
            "truncated payload");

  // Wrong magic.
  WriteFileBytes(path, "NOTACKPT" + bytes.substr(8));
  EXPECT_EQ(persist::ReadRecordFile(path, RecordType::kCsgs, 7, &payload),
            "bad magic");

  // Zero-length file.
  WriteFileBytes(path, "");
  EXPECT_EQ(persist::ReadRecordFile(path, RecordType::kCsgs, 7, &payload),
            "truncated header");
}

// ---------------------------------------------------------------------------
// Atomic writes under injected faults.

TEST_F(PersistTest, AtomicWriteReplacesOrPreservesNeverTears) {
  std::string dir = ScratchDir("atomic");
  std::string path = dir + "/file.txt";
  ASSERT_EQ(AtomicWriteFile(path, "version 1"), "");
  EXPECT_EQ(ReadFileBytes(path), "version 1");

  {
    failpoint::ScopedFailpoint fp("persist.fsync");
    std::string error = AtomicWriteFile(path, "version 2");
    EXPECT_NE(error, "");
    // The failed write left the previous version intact and no temp file.
    EXPECT_EQ(ReadFileBytes(path), "version 1");
    EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  }
  {
    failpoint::ScopedFailpoint fp("persist.rename");
    std::string error = AtomicWriteFile(path, "version 3");
    EXPECT_NE(error, "");
    EXPECT_EQ(ReadFileBytes(path), "version 1");
    EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  }
  ASSERT_EQ(AtomicWriteFile(path, "version 4"), "");
  EXPECT_EQ(ReadFileBytes(path), "version 4");
}

TEST_F(PersistTest, TornWriteIsCaughtByRecordValidation) {
  std::string dir = ScratchDir("torn");
  std::string path = dir + "/r.ckpt";
  {
    // A torn write publishes a prefix of the record; the writer cannot tell,
    // so the read-side validation has to.
    failpoint::ScopedFailpoint fp("persist.torn_write");
    ASSERT_EQ(persist::WriteRecordFile(path, RecordType::kCsgs, 7,
                                       std::string(200, 'b')),
              "");
  }
  std::string payload;
  std::string error =
      persist::ReadRecordFile(path, RecordType::kCsgs, 7, &payload);
  EXPECT_NE(error, "");
  EXPECT_TRUE(payload.empty());
}

TEST_F(PersistTest, ShortReadAndBitFlipFailpointsAreCaught) {
  std::string dir = ScratchDir("read_faults");
  std::string path = dir + "/r.ckpt";
  ASSERT_EQ(persist::WriteRecordFile(path, RecordType::kCsgs, 7,
                                     std::string(200, 'c')),
            "");
  std::string payload;
  {
    failpoint::ScopedFailpoint fp("persist.short_read");
    EXPECT_NE(persist::ReadRecordFile(path, RecordType::kCsgs, 7, &payload),
              "");
  }
  {
    failpoint::ScopedFailpoint fp("persist.bit_flip");
    EXPECT_NE(persist::ReadRecordFile(path, RecordType::kCsgs, 7, &payload),
              "");
  }
  // Undisturbed, the record still reads fine.
  EXPECT_EQ(persist::ReadRecordFile(path, RecordType::kCsgs, 7, &payload),
            "");
}

// ---------------------------------------------------------------------------
// Atomic database writes (the io.cc satellite).

TEST_F(PersistTest, WriteDatabaseToFileIsAtomic) {
  std::string dir = ScratchDir("db");
  std::string path = dir + "/db.txt";
  GraphDatabase db = SmallDb(5, 10);
  IoStatus status = WriteDatabaseToFile(db, path);
  ASSERT_TRUE(status) << status.message();
  std::string original = ReadFileBytes(path);
  auto reloaded = ReadDatabaseFromFile(path);
  ASSERT_TRUE(reloaded.has_value());
  EXPECT_EQ(reloaded->size(), db.size());

  // A failed overwrite reports why and leaves the original untouched.
  failpoint::ScopedFailpoint fp("persist.fsync");
  status = WriteDatabaseToFile(SmallDb(6, 4), path);
  EXPECT_FALSE(status);
  EXPECT_NE(status.message(), "");
  EXPECT_EQ(ReadFileBytes(path), original);
}

TEST_F(PersistTest, TruncatedDatabaseFileFailsGracefully) {
  std::string dir = ScratchDir("truncdb");
  std::string path = dir + "/db.txt";
  GraphDatabase db = SmallDb(5, 10);
  ASSERT_TRUE(WriteDatabaseToFile(db, path));
  std::string bytes = ReadFileBytes(path);
  // Cut the file at every eighth byte; parsing must either succeed on the
  // prefix or fail with a diagnostic — never abort.
  for (size_t cut = 0; cut < bytes.size(); cut += 8) {
    WriteFileBytes(path, bytes.substr(0, cut));
    ParseError error;
    auto parsed = ReadDatabaseFromFile(path, &error);
    if (!parsed) {
      EXPECT_NE(error.message, "");
    }
  }
}

// ---------------------------------------------------------------------------
// Options validation.

TEST_F(PersistTest, ValidateCatapultOptionsAcceptsDefaults) {
  EXPECT_TRUE(ValidateCatapultOptions(FastOptions()).empty());
  CatapultOptions sampling = FastOptions();
  sampling.use_sampling = true;
  EXPECT_TRUE(ValidateCatapultOptions(sampling).empty());
}

TEST_F(PersistTest, ValidateCatapultOptionsRejectsBadBudget) {
  CatapultOptions options = FastOptions();
  options.selector.budget.eta_min = 2;  // Definition 3.1 requires > 2
  EXPECT_FALSE(ValidateCatapultOptions(options).empty());

  options = FastOptions();
  options.selector.budget.eta_max = options.selector.budget.eta_min - 1;
  EXPECT_FALSE(ValidateCatapultOptions(options).empty());

  options = FastOptions();
  options.selector.budget.gamma = 0;
  EXPECT_FALSE(ValidateCatapultOptions(options).empty());

  options = FastOptions();
  options.selector.walks_per_candidate = 0;
  EXPECT_FALSE(ValidateCatapultOptions(options).empty());

  options = FastOptions();
  options.selector.weight_decay = 0.0;
  EXPECT_FALSE(ValidateCatapultOptions(options).empty());

  options = FastOptions();
  options.resume = true;  // resume without a checkpoint directory
  EXPECT_FALSE(ValidateCatapultOptions(options).empty());
}

TEST_F(PersistTest, RunCatapultReturnsOptionErrorsInsteadOfAborting) {
  GraphDatabase db = SmallDb();
  CatapultOptions options = FastOptions();
  options.selector.budget.eta_min = 10;
  options.selector.budget.eta_max = 4;
  CatapultResult result = RunCatapult(db, options);
  EXPECT_FALSE(result.ok());
  ASSERT_FALSE(result.option_errors.empty());
  EXPECT_NE(result.option_errors[0].field, "");
  EXPECT_NE(result.option_errors[0].message, "");
  // The pipeline never ran.
  EXPECT_TRUE(result.selection.patterns.empty());
  EXPECT_TRUE(result.clusters.empty());
}

TEST_F(PersistTest, ConfigFingerprintTracksOutputAffectingOptionsOnly) {
  GraphDatabase db = SmallDb();
  CatapultOptions a = FastOptions();
  CatapultOptions b = FastOptions();
  EXPECT_EQ(ConfigFingerprint(a, db), ConfigFingerprint(b, db));

  // Deadlines are excluded by design: resuming under a new deadline is the
  // expected use of a checkpoint.
  b.deadline_ms = 5000.0;
  b.clustering_time_share = 0.2;
  EXPECT_EQ(ConfigFingerprint(a, db), ConfigFingerprint(b, db));

  b = FastOptions();
  b.seed = a.seed + 1;
  EXPECT_NE(ConfigFingerprint(a, db), ConfigFingerprint(b, db));

  b = FastOptions();
  b.selector.budget.gamma = a.selector.budget.gamma + 1;
  EXPECT_NE(ConfigFingerprint(a, db), ConfigFingerprint(b, db));

  GraphDatabase other_db = SmallDb(77);
  EXPECT_NE(ConfigFingerprint(a, db), ConfigFingerprint(a, other_db));
}

// ---------------------------------------------------------------------------
// Checkpoint store: save, recover, reject.

TEST_F(PersistTest, CheckpointedRunRecoversAllPhases) {
  GraphDatabase db = SmallDb();
  CatapultOptions options = FastOptions();
  options.checkpoint_dir = ScratchDir("all");
  CatapultResult run = RunCatapult(db, options);
  EXPECT_GT(run.execution.checkpoints_written, 0u);
  EXPECT_TRUE(HasEvent(run.execution.checkpoint_events,
                       CheckpointEvent::Kind::kPhaseCheckpointed,
                       "clustering"));
  EXPECT_TRUE(HasEvent(run.execution.checkpoint_events,
                       CheckpointEvent::Kind::kPhaseCheckpointed, "csgs"));

  CheckpointStore store(options.checkpoint_dir,
                        ConfigFingerprint(options, db));
  CheckpointStore::Recovery recovery =
      store.Recover(db, options.selector.budget);
  ASSERT_TRUE(recovery.clustering.has_value());
  ASSERT_TRUE(recovery.csgs.has_value());
  ASSERT_TRUE(recovery.selection.has_value());
  EXPECT_EQ(recovery.clustering->clusters, run.clusters);
  EXPECT_EQ(recovery.csgs->csgs.size(), run.csgs.size());
  EXPECT_EQ(recovery.selection->patterns.size(),
            run.selection.patterns.size());
}

TEST_F(PersistTest, RecoverRejectsForeignFingerprint) {
  GraphDatabase db = SmallDb();
  CatapultOptions options = FastOptions();
  options.checkpoint_dir = ScratchDir("foreign");
  RunCatapult(db, options);

  // A store keyed to a different seed must not reuse these checkpoints.
  CatapultOptions other = options;
  other.seed = options.seed + 1;
  CheckpointStore store(options.checkpoint_dir, ConfigFingerprint(other, db));
  CheckpointStore::Recovery recovery =
      store.Recover(db, other.selector.budget);
  EXPECT_FALSE(recovery.clustering.has_value());
  EXPECT_FALSE(recovery.csgs.has_value());
  EXPECT_FALSE(recovery.selection.has_value());
  EXPECT_TRUE(HasEvent(recovery.events,
                       CheckpointEvent::Kind::kCheckpointRejected,
                       "manifest"));
  EXPECT_TRUE(HasEvent(recovery.events, CheckpointEvent::Kind::kColdStart,
                       ""));
}

TEST_F(PersistTest, RecoveryLadderFallsPhaseByPhase) {
  GraphDatabase db = SmallDb();
  CatapultOptions options = FastOptions();
  options.checkpoint_dir = ScratchDir("ladder");
  RunCatapult(db, options);
  uint64_t fp = ConfigFingerprint(options, db);
  const PatternBudget& budget = options.selector.budget;

  // Corrupt selection -> resume from CSGs.
  FlipByteAt(CheckpointPath(options.checkpoint_dir, RecordType::kSelection),
             100);
  {
    CheckpointStore store(options.checkpoint_dir, fp);
    CheckpointStore::Recovery r = store.Recover(db, budget);
    EXPECT_TRUE(r.clustering.has_value());
    EXPECT_TRUE(r.csgs.has_value());
    EXPECT_FALSE(r.selection.has_value());
    EXPECT_TRUE(HasEvent(r.events, CheckpointEvent::Kind::kCheckpointRejected,
                         "selection"));
  }

  // Corrupt CSGs too -> resume from clusters.
  FlipByteAt(CheckpointPath(options.checkpoint_dir, RecordType::kCsgs), 100);
  {
    CheckpointStore store(options.checkpoint_dir, fp);
    CheckpointStore::Recovery r = store.Recover(db, budget);
    EXPECT_TRUE(r.clustering.has_value());
    EXPECT_FALSE(r.csgs.has_value());
    EXPECT_FALSE(r.selection.has_value());
    EXPECT_TRUE(HasEvent(r.events, CheckpointEvent::Kind::kCheckpointRejected,
                         "csgs"));
  }

  // Corrupt clustering too -> cold start.
  FlipByteAt(CheckpointPath(options.checkpoint_dir, RecordType::kClustering),
             100);
  {
    CheckpointStore store(options.checkpoint_dir, fp);
    CheckpointStore::Recovery r = store.Recover(db, budget);
    EXPECT_FALSE(r.clustering.has_value());
    EXPECT_TRUE(HasEvent(r.events, CheckpointEvent::Kind::kCheckpointRejected,
                         "clustering"));
    EXPECT_TRUE(HasEvent(r.events, CheckpointEvent::Kind::kColdStart, ""));
  }
}

TEST_F(PersistTest, EmptyOrMissingManifestMeansColdStart) {
  GraphDatabase db = SmallDb();
  CatapultOptions options = FastOptions();
  options.checkpoint_dir = ScratchDir("manifest");
  RunCatapult(db, options);
  uint64_t fp = ConfigFingerprint(options, db);
  std::string manifest =
      CheckpointPath(options.checkpoint_dir, RecordType::kManifest);

  // Zero-length manifest.
  WriteFileBytes(manifest, "");
  {
    CheckpointStore store(options.checkpoint_dir, fp);
    CheckpointStore::Recovery r = store.Recover(db, options.selector.budget);
    EXPECT_FALSE(r.clustering.has_value());
    EXPECT_TRUE(HasEvent(r.events, CheckpointEvent::Kind::kColdStart, ""));
  }

  // Missing manifest (the artifacts are still on disk — without the
  // manifest they are unauthenticated and must be ignored).
  std::filesystem::remove(manifest);
  {
    CheckpointStore store(options.checkpoint_dir, fp);
    CheckpointStore::Recovery r = store.Recover(db, options.selector.budget);
    EXPECT_FALSE(r.clustering.has_value());
    EXPECT_TRUE(HasEvent(r.events, CheckpointEvent::Kind::kColdStart, ""));
  }
}

TEST_F(PersistTest, RecoverSurvivesArbitraryCorruption) {
  GraphDatabase db = SmallDb();
  CatapultOptions options = FastOptions();
  options.checkpoint_dir = ScratchDir("fuzz");
  RunCatapult(db, options);
  uint64_t fp = ConfigFingerprint(options, db);

  // Flip a byte at many offsets of each checkpoint file in turn; every
  // recovery attempt must return normally (possibly cold) — never abort.
  for (RecordType type : {RecordType::kManifest, RecordType::kClustering,
                          RecordType::kCsgs, RecordType::kSelection}) {
    std::string path = CheckpointPath(options.checkpoint_dir, type);
    std::string pristine = ReadFileBytes(path);
    for (size_t offset = 0; offset < pristine.size();
         offset += 1 + pristine.size() / 23) {
      std::string corrupt = pristine;
      corrupt[offset] ^= 0x40;
      WriteFileBytes(path, corrupt);
      CheckpointStore store(options.checkpoint_dir, fp);
      (void)store.Recover(db, options.selector.budget);
    }
    WriteFileBytes(path, pristine);
  }
}

// ---------------------------------------------------------------------------
// End-to-end kill/resume: the panel must be bit-identical to the
// uninterrupted run.

TEST_F(PersistTest, CheckpointingDoesNotChangeTheOutput) {
  GraphDatabase db = SmallDb();
  CatapultOptions plain = FastOptions();
  CatapultResult baseline = RunCatapult(db, plain);
  ASSERT_FALSE(baseline.selection.patterns.empty());

  CatapultOptions checkpointed = FastOptions();
  checkpointed.checkpoint_dir = ScratchDir("out");
  CatapultResult run = RunCatapult(db, checkpointed);
  ExpectSamePanel(baseline, run);
}

TEST_F(PersistTest, ResumeAfterKillPostCsgIsBitIdentical) {
  GraphDatabase db = SmallDb();
  CatapultResult baseline = RunCatapult(db, FastOptions());
  ASSERT_FALSE(baseline.selection.patterns.empty());

  CatapultOptions options = FastOptions();
  options.checkpoint_dir = ScratchDir("kill");
  {
    // Simulated kill right after the CSG checkpoint became durable.
    failpoint::ScopedFailpoint fp("catapult.crash_after_csg_checkpoint", 1);
    CatapultResult killed = RunCatapult(db, options);
    EXPECT_FALSE(killed.execution.selection_complete);
  }

  options.resume = true;
  CatapultResult resumed = RunCatapult(db, options);
  EXPECT_EQ(resumed.execution.resumed_from, "csgs");
  EXPECT_TRUE(resumed.execution.Resumed());
  EXPECT_TRUE(HasEvent(resumed.execution.checkpoint_events,
                       CheckpointEvent::Kind::kResumedFromPhase, "csgs"));
  ExpectSamePanel(baseline, resumed);
}

TEST_F(PersistTest, ResumeAfterKillPostClusteringIsBitIdentical) {
  GraphDatabase db = SmallDb();
  CatapultResult baseline = RunCatapult(db, FastOptions());

  CatapultOptions options = FastOptions();
  options.checkpoint_dir = ScratchDir("kill");
  {
    failpoint::ScopedFailpoint fp("catapult.crash_after_clustering_checkpoint",
                                  1);
    RunCatapult(db, options);
  }
  options.resume = true;
  CatapultResult resumed = RunCatapult(db, options);
  EXPECT_EQ(resumed.execution.resumed_from, "clustering");
  ExpectSamePanel(baseline, resumed);
}

TEST_F(PersistTest, ResumeMidSelectionIsBitIdentical) {
  GraphDatabase db = SmallDb();
  CatapultResult baseline = RunCatapult(db, FastOptions());
  ASSERT_GT(baseline.selection.patterns.size(), 1u);

  CatapultOptions options = FastOptions();
  options.checkpoint_dir = ScratchDir("kill");
  {
    // Kill right after the first selected pattern's progress checkpoint.
    failpoint::ScopedFailpoint fp("catapult.crash_after_selection_checkpoint",
                                  1);
    RunCatapult(db, options);
  }
  options.resume = true;
  CatapultResult resumed = RunCatapult(db, options);
  EXPECT_EQ(resumed.execution.resumed_from, "selection");
  ExpectSamePanel(baseline, resumed);
}

TEST_F(PersistTest, ResumeWithCorruptSelectionFallsDownTheLadder) {
  GraphDatabase db = SmallDb();
  CatapultResult baseline = RunCatapult(db, FastOptions());

  CatapultOptions options = FastOptions();
  options.checkpoint_dir = ScratchDir("corrupt");
  RunCatapult(db, options);
  FlipByteAt(CheckpointPath(options.checkpoint_dir, RecordType::kSelection),
             100);

  options.resume = true;
  CatapultResult resumed = RunCatapult(db, options);
  // The ladder fell to CSGs, the rejection is on the record, and the rerun
  // selection still reproduces the baseline panel exactly.
  EXPECT_EQ(resumed.execution.resumed_from, "csgs");
  EXPECT_TRUE(HasEvent(resumed.execution.checkpoint_events,
                       CheckpointEvent::Kind::kCheckpointRejected,
                       "selection"));
  ExpectSamePanel(baseline, resumed);
}

TEST_F(PersistTest, ResumeFromEmptyDirectoryColdStarts) {
  GraphDatabase db = SmallDb();
  CatapultResult baseline = RunCatapult(db, FastOptions());

  CatapultOptions options = FastOptions();
  options.checkpoint_dir = ScratchDir("empty");
  options.resume = true;
  CatapultResult resumed = RunCatapult(db, options);
  EXPECT_FALSE(resumed.execution.Resumed());
  EXPECT_TRUE(HasEvent(resumed.execution.checkpoint_events,
                       CheckpointEvent::Kind::kColdStart, ""));
  ExpectSamePanel(baseline, resumed);
}

TEST_F(PersistTest, CheckpointWriteFailureIsLoggedAndRunContinues) {
  GraphDatabase db = SmallDb();
  CatapultResult baseline = RunCatapult(db, FastOptions());

  CatapultOptions options = FastOptions();
  options.checkpoint_dir = ScratchDir("failing");
  failpoint::ScopedFailpoint fp("persist.fsync");  // every write fails
  CatapultResult run = RunCatapult(db, options);
  EXPECT_EQ(run.execution.checkpoints_written, 0u);
  EXPECT_TRUE(HasEvent(run.execution.checkpoint_events,
                       CheckpointEvent::Kind::kCheckpointWriteFailed,
                       "clustering"));
  // The run itself is unharmed, just unprotected.
  ExpectSamePanel(baseline, run);
}

// ---------------------------------------------------------------------------
// Rng state round trip (the primitive bit-identical resume rests on).

TEST_F(PersistTest, RngStateRoundTrip) {
  Rng rng(123);
  for (int i = 0; i < 10; ++i) rng.Next();
  RngState state = rng.SaveState();
  EXPECT_TRUE(state.Valid());
  std::vector<uint64_t> expected;
  for (int i = 0; i < 5; ++i) expected.push_back(rng.Next());
  Rng other(999);
  other.RestoreState(state);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(other.Next(), expected[i]);
  EXPECT_FALSE(RngState().Valid());
}

TEST_F(PersistTest, CheckpointEventToString) {
  CheckpointEvent event{CheckpointEvent::Kind::kCheckpointRejected, "csgs",
                        "payload checksum mismatch"};
  EXPECT_EQ(ToString(event),
            "checkpoint rejected [csgs]: payload checksum mismatch");
}

}  // namespace
}  // namespace catapult
