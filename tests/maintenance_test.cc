#include "src/core/maintenance.h"

#include <gtest/gtest.h>

#include <set>

#include "src/data/molecule_generator.h"
#include "src/iso/vf2.h"

namespace catapult {
namespace {

CatapultOptions FastOptions() {
  CatapultOptions options;
  options.selector.budget = {.eta_min = 3, .eta_max = 5, .gamma = 6};
  options.selector.walks_per_candidate = 8;
  options.clustering.max_cluster_size = 12;
  options.clustering.fine_mcs.node_budget = 3000;
  options.seed = 7;
  return options;
}

TEST(MaintenanceTest, AppendsGraphsAndPartitionStaysValid) {
  GraphDatabase db = GenerateMoleculeDatabase(
      {.num_graphs = 50, .scaffold_families = 4, .seed = 61});
  CatapultResult previous = RunCatapult(db, FastOptions());

  // New arrivals from the same generator (same label universe).
  GraphDatabase arrivals_db = GenerateMoleculeDatabase(
      {.num_graphs = 12, .scaffold_families = 4, .seed = 62});
  std::vector<Graph> arrivals(arrivals_db.graphs().begin(),
                              arrivals_db.graphs().end());

  MaintenanceOptions options;
  options.selector = FastOptions().selector;
  GraphDatabase updated;
  MaintenanceResult result =
      UpdateWithNewGraphs(db, previous, arrivals, options, &updated);

  EXPECT_EQ(updated.size(), 62u);
  // Old ids preserved.
  for (GraphId i = 0; i < db.size(); ++i) {
    EXPECT_EQ(updated.graph(i).NumVertices(), db.graph(i).NumVertices());
  }
  // Clusters partition the updated database.
  std::set<GraphId> seen;
  for (const auto& cluster : result.clusters) {
    for (GraphId id : cluster) {
      EXPECT_TRUE(seen.insert(id).second);
      EXPECT_LT(id, updated.size());
    }
  }
  EXPECT_EQ(seen.size(), updated.size());
  EXPECT_EQ(result.csgs.size(), result.clusters.size());
  EXPECT_EQ(result.patterns_kept + result.patterns_changed,
            result.selection.patterns.size());
}

TEST(MaintenanceTest, SimilarArrivalsJoinExistingClusters) {
  GraphDatabase db = GenerateMoleculeDatabase(
      {.num_graphs = 40, .scaffold_families = 2, .seed = 63});
  CatapultResult previous = RunCatapult(db, FastOptions());
  GraphDatabase arrivals_db = GenerateMoleculeDatabase(
      {.num_graphs = 8, .scaffold_families = 2, .seed = 64});
  std::vector<Graph> arrivals(arrivals_db.graphs().begin(),
                              arrivals_db.graphs().end());
  MaintenanceOptions options;
  options.selector = FastOptions().selector;
  GraphDatabase updated;
  MaintenanceResult result =
      UpdateWithNewGraphs(db, previous, arrivals, options, &updated);
  // Same two families: most arrivals should slot into existing clusters.
  EXPECT_LE(result.new_clusters, 2u);
}

TEST(MaintenanceTest, AlienArrivalsSeedNewClusters) {
  GraphDatabase db = GenerateMoleculeDatabase(
      {.num_graphs = 30, .scaffold_families = 1, .seed = 65});
  CatapultResult previous = RunCatapult(db, FastOptions());
  // Arrivals with labels the old data never used (fresh label ids).
  std::vector<Graph> arrivals;
  Label alien = 1000;
  for (int i = 0; i < 3; ++i) {
    Graph g;
    for (int v = 0; v < 5; ++v) g.AddVertex(alien);
    for (int v = 0; v + 1 < 5; ++v) {
      g.AddEdge(static_cast<VertexId>(v), static_cast<VertexId>(v + 1));
    }
    arrivals.push_back(std::move(g));
  }
  MaintenanceOptions options;
  options.selector = FastOptions().selector;
  GraphDatabase updated;
  MaintenanceResult result =
      UpdateWithNewGraphs(db, previous, arrivals, options, &updated);
  EXPECT_GE(result.new_clusters, 1u);
}

TEST(MaintenanceTest, NoArrivalsKeepsPanelStable) {
  GraphDatabase db = GenerateMoleculeDatabase(
      {.num_graphs = 40, .scaffold_families = 3, .seed = 66});
  CatapultOptions run_options = FastOptions();
  CatapultResult previous = RunCatapult(db, run_options);
  MaintenanceOptions options;
  options.selector = run_options.selector;
  GraphDatabase updated;
  MaintenanceResult result =
      UpdateWithNewGraphs(db, previous, {}, options, &updated);
  EXPECT_EQ(result.new_clusters, 0u);
  EXPECT_EQ(updated.size(), db.size());
  // Clusters are untouched.
  ASSERT_EQ(result.clusters.size(), previous.clusters.size());
  for (size_t c = 0; c < result.clusters.size(); ++c) {
    EXPECT_EQ(result.clusters[c], previous.clusters[c]);
  }
  // The update itself is deterministic: running it again reproduces the
  // panel exactly. (The panel may differ from `previous` because selection
  // is re-seeded; what matters operationally is a stable, reproducible
  // update.)
  GraphDatabase updated2;
  MaintenanceResult again =
      UpdateWithNewGraphs(db, previous, {}, options, &updated2);
  ASSERT_EQ(again.selection.patterns.size(),
            result.selection.patterns.size());
  for (size_t i = 0; i < again.selection.patterns.size(); ++i) {
    EXPECT_TRUE(AreIsomorphic(again.selection.patterns[i].graph,
                              result.selection.patterns[i].graph));
  }
}

TEST(MaintenanceTest, ClusterCapRespected) {
  GraphDatabase db = GenerateMoleculeDatabase(
      {.num_graphs = 30, .scaffold_families = 1, .seed = 67});
  CatapultResult previous = RunCatapult(db, FastOptions());
  GraphDatabase arrivals_db = GenerateMoleculeDatabase(
      {.num_graphs = 30, .scaffold_families = 1, .seed = 68});
  std::vector<Graph> arrivals(arrivals_db.graphs().begin(),
                              arrivals_db.graphs().end());
  MaintenanceOptions options;
  options.selector = FastOptions().selector;
  options.max_cluster_size = 15;
  GraphDatabase updated;
  MaintenanceResult result =
      UpdateWithNewGraphs(db, previous, arrivals, options, &updated);
  for (const auto& cluster : result.clusters) {
    EXPECT_LE(cluster.size(), 16u);  // cap + the member that tripped it
  }
}

}  // namespace
}  // namespace catapult
