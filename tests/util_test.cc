#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <set>
#include <thread>
#include <vector>

#include "src/util/bitset.h"
#include "src/util/failpoint.h"
#include "src/util/mem_budget.h"
#include "src/util/rng.h"
#include "src/util/signal.h"
#include "src/util/stats.h"
#include "src/util/thread_pool.h"

#if defined(__unix__) || defined(__APPLE__)
#include <poll.h>
#include <unistd.h>
#endif

namespace catapult {
namespace {

TEST(RngTest, Deterministic) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) any_diff |= (a.Next() != b.Next());
  EXPECT_TRUE(any_diff);
}

TEST(RngTest, UniformIntInBounds) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.UniformInt(7), 7u);
}

TEST(RngTest, UniformIntCoversRange) {
  Rng rng(5);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.UniformInt(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, UniformInRangeInclusive) {
  Rng rng(6);
  std::set<int64_t> seen;
  for (int i = 0; i < 200; ++i) {
    int64_t v = rng.UniformInRange(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, UniformRealInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.UniformReal();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(8);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, WeightedIndexRespectsZeros) {
  Rng rng(9);
  std::vector<double> weights = {0.0, 1.0, 0.0, 3.0};
  for (int i = 0; i < 200; ++i) {
    size_t idx = rng.WeightedIndex(weights);
    EXPECT_TRUE(idx == 1 || idx == 3);
  }
}

TEST(RngTest, WeightedIndexProportional) {
  Rng rng(10);
  std::vector<double> weights = {1.0, 9.0};
  int count1 = 0;
  const int kTrials = 5000;
  for (int i = 0; i < kTrials; ++i) {
    if (rng.WeightedIndex(weights) == 1) ++count1;
  }
  // Expect roughly 90% +- 3%.
  EXPECT_NEAR(static_cast<double>(count1) / kTrials, 0.9, 0.03);
}

TEST(RngTest, SampleIndicesDistinctAndBounded) {
  Rng rng(11);
  std::vector<size_t> sample = rng.SampleIndices(100, 10);
  EXPECT_EQ(sample.size(), 10u);
  std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
  for (size_t s : sample) EXPECT_LT(s, 100u);
}

TEST(RngTest, SampleIndicesAllWhenKTooLarge) {
  Rng rng(12);
  std::vector<size_t> sample = rng.SampleIndices(5, 10);
  EXPECT_EQ(sample.size(), 5u);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(13);
  std::vector<int> items = {1, 2, 3, 4, 5};
  std::vector<int> shuffled = items;
  rng.Shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, items);
}

TEST(BitsetTest, SetTestClear) {
  DynamicBitset bits(130);
  EXPECT_FALSE(bits.Test(129));
  bits.Set(129);
  EXPECT_TRUE(bits.Test(129));
  bits.Clear(129);
  EXPECT_FALSE(bits.Test(129));
}

TEST(BitsetTest, CountAndNone) {
  DynamicBitset bits(70);
  EXPECT_TRUE(bits.None());
  bits.Set(0);
  bits.Set(64);
  bits.Set(69);
  EXPECT_EQ(bits.Count(), 3u);
  EXPECT_FALSE(bits.None());
}

TEST(BitsetTest, UnionIntersection) {
  DynamicBitset a(10);
  DynamicBitset b(10);
  a.Set(1);
  a.Set(2);
  b.Set(2);
  b.Set(3);
  EXPECT_EQ(a.IntersectCount(b), 1u);
  EXPECT_EQ(a.UnionCount(b), 3u);
  EXPECT_EQ(a.HammingDistance(b), 2u);
  DynamicBitset u = a;
  u |= b;
  EXPECT_EQ(u.Count(), 3u);
  DynamicBitset i = a;
  i &= b;
  EXPECT_EQ(i.Count(), 1u);
  EXPECT_TRUE(i.Test(2));
}

TEST(BitsetTest, ToIndicesSorted) {
  DynamicBitset bits(200);
  bits.Set(5);
  bits.Set(190);
  bits.Set(64);
  std::vector<size_t> indices = bits.ToIndices();
  EXPECT_EQ(indices, (std::vector<size_t>{5, 64, 190}));
}

TEST(BitsetTest, Equality) {
  DynamicBitset a(10);
  DynamicBitset b(10);
  EXPECT_EQ(a, b);
  a.Set(3);
  EXPECT_FALSE(a == b);
}

TEST(StatsTest, MeanMaxMin) {
  std::vector<double> v = {1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(Mean(v), 2.0);
  EXPECT_DOUBLE_EQ(Max(v), 3.0);
  EXPECT_DOUBLE_EQ(Min(v), 1.0);
}

TEST(StatsTest, EmptyIsZero) {
  std::vector<double> v;
  EXPECT_DOUBLE_EQ(Mean(v), 0.0);
  EXPECT_DOUBLE_EQ(Max(v), 0.0);
  EXPECT_DOUBLE_EQ(StdDev(v), 0.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 50), 0.0);
}

TEST(StatsTest, StdDevOfConstantIsZero) {
  std::vector<double> v = {4.0, 4.0, 4.0};
  EXPECT_DOUBLE_EQ(StdDev(v), 0.0);
}

TEST(StatsTest, PercentileInterpolates) {
  std::vector<double> v = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(Percentile(v, 50), 5.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 0), 0.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 100), 10.0);
}

TEST(StatsTest, KendallTauPerfectAgreement) {
  std::vector<double> a = {1, 2, 3, 4};
  std::vector<double> b = {10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(KendallTau(a, b), 1.0);
}

TEST(StatsTest, KendallTauPerfectDisagreement) {
  std::vector<double> a = {1, 2, 3, 4};
  std::vector<double> b = {4, 3, 2, 1};
  EXPECT_DOUBLE_EQ(KendallTau(a, b), -1.0);
}

TEST(StatsTest, KendallTauMismatchedSizesIsZero) {
  EXPECT_DOUBLE_EQ(KendallTau({1, 2}, {1}), 0.0);
}

TEST(ThreadPoolTest, ClampsThreadCount) {
  EXPECT_EQ(ThreadPool(0).num_threads(), 1u);
  EXPECT_EQ(ThreadPool(3).num_threads(), 3u);
  EXPECT_EQ(ThreadPool(ThreadPool::kMaxThreads + 100).num_threads(),
            ThreadPool::kMaxThreads);
  EXPECT_GE(ThreadPool::HardwareThreads(), 1u);
}

TEST(ThreadPoolTest, EveryIndexRunsExactlyOnce) {
  constexpr size_t kN = 20000;
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(kN);
  for (auto& h : hits) h.store(0, std::memory_order_relaxed);
  pool.ParallelFor(kN, 7, [&](size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(std::memory_order_relaxed), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, SingleThreadRunsInlineInOrder) {
  ThreadPool pool(1);
  std::vector<size_t> order;
  std::thread::id caller = std::this_thread::get_id();
  bool all_on_caller = true;
  pool.ParallelFor(100, 16, [&](size_t i) {
    order.push_back(i);
    if (std::this_thread::get_id() != caller) all_on_caller = false;
  });
  ASSERT_EQ(order.size(), 100u);
  for (size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
  EXPECT_TRUE(all_on_caller);
}

TEST(ThreadPoolTest, OutputsIdenticalAcrossPoolSizes) {
  // The determinism contract: per-item slots + ordered reduce give the same
  // bytes at any pool size. Each item derives a value from a pre-split rng
  // stream, exactly like the pipeline's parallel phases do.
  constexpr size_t kN = 512;
  auto run = [](size_t threads) {
    Rng rng(1234);
    std::vector<Rng> streams;
    streams.reserve(kN);
    for (size_t i = 0; i < kN; ++i) streams.push_back(rng.Split());
    ThreadPool pool(threads);
    std::vector<double> slots(kN, 0.0);
    pool.ParallelFor(kN, 3, [&](size_t i) {
      slots[i] = streams[i].UniformReal() + static_cast<double>(i);
    });
    double reduced = 0.0;
    for (double v : slots) reduced += v;  // ordered fp accumulation
    return std::make_pair(slots, reduced);
  };
  auto [slots1, sum1] = run(1);
  auto [slots2, sum2] = run(2);
  auto [slots8, sum8] = run(8);
  EXPECT_EQ(slots1, slots2);
  EXPECT_EQ(slots1, slots8);
  EXPECT_EQ(sum1, sum2);
  EXPECT_EQ(sum1, sum8);
}

TEST(ThreadPoolTest, StatsCountItemsAndRegions) {
  ThreadPool pool(2);
  pool.ParallelFor(100, [](size_t) {});
  pool.ParallelFor(50, 8, [](size_t) {});
  ThreadPool::Stats stats = pool.stats();
  EXPECT_EQ(stats.items, 150u);
  EXPECT_EQ(stats.regions, 2u);
  EXPECT_GE(stats.busy_seconds, 0.0);
}

TEST(ThreadPoolTest, BackToBackRegionsReuseWorkers) {
  ThreadPool pool(4);
  std::atomic<size_t> total{0};
  for (int round = 0; round < 50; ++round) {
    pool.ParallelFor(64, [&](size_t) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(total.load(), 64u * 50u);
}

TEST(ThreadPoolTest, ZeroItemsIsANoOp) {
  ThreadPool pool(4);
  bool ran = false;
  pool.ParallelFor(0, [&](size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(MemoryBudgetTest, ConcurrentChargesBalanceToZero) {
  // Hammer the ledger from four threads; every TryCharge on an unlimited
  // budget succeeds and is paired with a Release, so the ledger must read
  // exactly zero afterwards and the peak must be at most the sum of all
  // concurrent outstanding charges.
  MemoryBudget budget = MemoryBudget::Unlimited();
  constexpr int kThreads = 4;
  constexpr int kIters = 5000;
  constexpr size_t kBytes = 64;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&budget] {
      for (int i = 0; i < kIters; ++i) {
        ASSERT_TRUE(budget.TryCharge(kBytes, "test.hammer"));
        budget.Release(kBytes);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(budget.used(), 0u);
  EXPECT_FALSE(budget.HardBreached());
  EXPECT_GE(budget.peak(), kBytes);
  EXPECT_LE(budget.peak(), kThreads * kBytes);
}

TEST(MemoryBudgetTest, ConcurrentBreachLatchesOneAttributedError) {
  // Many threads race past a tiny hard limit. Exactly which charge is
  // refused first is scheduling-dependent, but the latched error must always
  // be fully attributed (site + sizes) the moment HardBreached() reads true.
  MemoryBudget budget = MemoryBudget::Limited(0, 1024);
  constexpr int kThreads = 4;
  std::atomic<int> refused{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&budget, &refused] {
      for (int i = 0; i < 200; ++i) {
        if (!budget.TryCharge(64, "test.breach")) {
          refused.fetch_add(1, std::memory_order_relaxed);
          // The sticky flag and its attribution must be visible together.
          ASSERT_TRUE(budget.HardBreached());
          ResourceError err = budget.error();
          ASSERT_EQ(err.site, "test.breach");
          ASSERT_EQ(err.requested, 64u);
          ASSERT_EQ(err.hard_limit, 1024u);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_GT(refused.load(), 0);
  EXPECT_TRUE(budget.HardBreached());
  EXPECT_LE(budget.used(), 1024u);
}

TEST(FailpointTest, CountedArmFiresExactlyNTimesAcrossThreads) {
  // A counted failpoint evaluated from four threads at once must fire
  // exactly `count` times in total — no lost or duplicated firings.
  failpoint::Arm("test.counted", 100);
  constexpr int kThreads = 4;
  std::atomic<int> fired{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&fired] {
      for (int i = 0; i < 1000; ++i) {
        if (CATAPULT_FAILPOINT("test.counted")) {
          fired.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(fired.load(), 100);
  EXPECT_EQ(failpoint::HitCount("test.counted"), 100u);
  failpoint::Disarm("test.counted");
}

TEST(FailpointTest, ConcurrentArmDisarmDoesNotWedgeEvaluate) {
  // Arm/disarm churn from one thread while others evaluate: no crash, and
  // evaluations never fire once the site is finally disarmed.
  std::atomic<bool> stop{false};
  std::vector<std::thread> evaluators;
  for (int t = 0; t < 3; ++t) {
    evaluators.emplace_back([&stop] {
      while (!stop.load(std::memory_order_relaxed)) {
        (void)CATAPULT_FAILPOINT("test.churn");
      }
    });
  }
  for (int i = 0; i < 200; ++i) {
    failpoint::Arm("test.churn", 2);
    failpoint::Disarm("test.churn");
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& th : evaluators) th.join();
  EXPECT_FALSE(CATAPULT_FAILPOINT("test.churn"));
}

#if defined(__unix__) || defined(__APPLE__)

// The self-pipe signal bridge (src/util/signal.h). raise() delivers to this
// process; the sigaction handlers installed by Instance() catch it, so these
// tests never die to the default disposition. Every test re-arms the bridge
// afterwards so a latched signal cannot leak into another test.

namespace {
// The watcher thread cancels the token asynchronously; poll for it.
bool TokenCancelledWithin(const CancelToken& token, int millis) {
  for (int i = 0; i < millis; ++i) {
    if (token.Cancelled()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return token.Cancelled();
}
}  // namespace

TEST(ShutdownSignalsTest, SignalLatchesAndCancelsToken) {
  ShutdownSignals& signals = ShutdownSignals::Instance();
  signals.ResetForTest();
  const CancelToken token = signals.token();
  EXPECT_FALSE(token.Cancelled());
  EXPECT_FALSE(signals.Received());

  ASSERT_EQ(std::raise(SIGTERM), 0);
  EXPECT_TRUE(TokenCancelledWithin(token, 2000));
  EXPECT_EQ(signals.last_signal(), SIGTERM);
  EXPECT_TRUE(signals.Received());
  signals.ResetForTest();
}

TEST(ShutdownSignalsTest, SubscribedFdWakesOnSignal) {
  ShutdownSignals& signals = ShutdownSignals::Instance();
  signals.ResetForTest();
  const int fd = signals.SubscribeFd();
  ASSERT_GE(fd, 0);

  // Not readable before any signal.
  pollfd idle{fd, POLLIN, 0};
  EXPECT_EQ(::poll(&idle, 1, 0), 0);

  ASSERT_EQ(std::raise(SIGINT), 0);
  pollfd woken{fd, POLLIN, 0};
  EXPECT_EQ(::poll(&woken, 1, 2000), 1);
  char byte = 0;
  EXPECT_EQ(::read(fd, &byte, 1), 1);
  EXPECT_EQ(static_cast<int>(byte), SIGINT);
  ::close(fd);
  signals.ResetForTest();
}

TEST(ShutdownSignalsTest, SubscribingAfterSignalIsRaceFree) {
  ShutdownSignals& signals = ShutdownSignals::Instance();
  signals.ResetForTest();
  ASSERT_EQ(std::raise(SIGTERM), 0);
  ASSERT_TRUE(TokenCancelledWithin(signals.token(), 2000));

  // A subscriber arriving late still sees the byte immediately.
  const int fd = signals.SubscribeFd();
  ASSERT_GE(fd, 0);
  pollfd p{fd, POLLIN, 0};
  EXPECT_EQ(::poll(&p, 1, 2000), 1);
  ::close(fd);
  signals.ResetForTest();
}

TEST(ShutdownSignalsTest, ResetForTestRearmsTheBridge) {
  ShutdownSignals& signals = ShutdownSignals::Instance();
  signals.ResetForTest();
  ASSERT_EQ(std::raise(SIGINT), 0);
  ASSERT_TRUE(TokenCancelledWithin(signals.token(), 2000));

  signals.ResetForTest();
  EXPECT_FALSE(signals.Received());
  EXPECT_EQ(signals.last_signal(), 0);
  // A fresh token is installed; the old cancellation does not bleed over.
  EXPECT_FALSE(signals.token().Cancelled());
}

#endif  // __unix__ || __APPLE__

}  // namespace
}  // namespace catapult
