#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "src/util/bitset.h"
#include "src/util/rng.h"
#include "src/util/stats.h"

namespace catapult {
namespace {

TEST(RngTest, Deterministic) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) any_diff |= (a.Next() != b.Next());
  EXPECT_TRUE(any_diff);
}

TEST(RngTest, UniformIntInBounds) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.UniformInt(7), 7u);
}

TEST(RngTest, UniformIntCoversRange) {
  Rng rng(5);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.UniformInt(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, UniformInRangeInclusive) {
  Rng rng(6);
  std::set<int64_t> seen;
  for (int i = 0; i < 200; ++i) {
    int64_t v = rng.UniformInRange(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, UniformRealInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.UniformReal();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(8);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, WeightedIndexRespectsZeros) {
  Rng rng(9);
  std::vector<double> weights = {0.0, 1.0, 0.0, 3.0};
  for (int i = 0; i < 200; ++i) {
    size_t idx = rng.WeightedIndex(weights);
    EXPECT_TRUE(idx == 1 || idx == 3);
  }
}

TEST(RngTest, WeightedIndexProportional) {
  Rng rng(10);
  std::vector<double> weights = {1.0, 9.0};
  int count1 = 0;
  const int kTrials = 5000;
  for (int i = 0; i < kTrials; ++i) {
    if (rng.WeightedIndex(weights) == 1) ++count1;
  }
  // Expect roughly 90% +- 3%.
  EXPECT_NEAR(static_cast<double>(count1) / kTrials, 0.9, 0.03);
}

TEST(RngTest, SampleIndicesDistinctAndBounded) {
  Rng rng(11);
  std::vector<size_t> sample = rng.SampleIndices(100, 10);
  EXPECT_EQ(sample.size(), 10u);
  std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
  for (size_t s : sample) EXPECT_LT(s, 100u);
}

TEST(RngTest, SampleIndicesAllWhenKTooLarge) {
  Rng rng(12);
  std::vector<size_t> sample = rng.SampleIndices(5, 10);
  EXPECT_EQ(sample.size(), 5u);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(13);
  std::vector<int> items = {1, 2, 3, 4, 5};
  std::vector<int> shuffled = items;
  rng.Shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, items);
}

TEST(BitsetTest, SetTestClear) {
  DynamicBitset bits(130);
  EXPECT_FALSE(bits.Test(129));
  bits.Set(129);
  EXPECT_TRUE(bits.Test(129));
  bits.Clear(129);
  EXPECT_FALSE(bits.Test(129));
}

TEST(BitsetTest, CountAndNone) {
  DynamicBitset bits(70);
  EXPECT_TRUE(bits.None());
  bits.Set(0);
  bits.Set(64);
  bits.Set(69);
  EXPECT_EQ(bits.Count(), 3u);
  EXPECT_FALSE(bits.None());
}

TEST(BitsetTest, UnionIntersection) {
  DynamicBitset a(10);
  DynamicBitset b(10);
  a.Set(1);
  a.Set(2);
  b.Set(2);
  b.Set(3);
  EXPECT_EQ(a.IntersectCount(b), 1u);
  EXPECT_EQ(a.UnionCount(b), 3u);
  EXPECT_EQ(a.HammingDistance(b), 2u);
  DynamicBitset u = a;
  u |= b;
  EXPECT_EQ(u.Count(), 3u);
  DynamicBitset i = a;
  i &= b;
  EXPECT_EQ(i.Count(), 1u);
  EXPECT_TRUE(i.Test(2));
}

TEST(BitsetTest, ToIndicesSorted) {
  DynamicBitset bits(200);
  bits.Set(5);
  bits.Set(190);
  bits.Set(64);
  std::vector<size_t> indices = bits.ToIndices();
  EXPECT_EQ(indices, (std::vector<size_t>{5, 64, 190}));
}

TEST(BitsetTest, Equality) {
  DynamicBitset a(10);
  DynamicBitset b(10);
  EXPECT_EQ(a, b);
  a.Set(3);
  EXPECT_FALSE(a == b);
}

TEST(StatsTest, MeanMaxMin) {
  std::vector<double> v = {1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(Mean(v), 2.0);
  EXPECT_DOUBLE_EQ(Max(v), 3.0);
  EXPECT_DOUBLE_EQ(Min(v), 1.0);
}

TEST(StatsTest, EmptyIsZero) {
  std::vector<double> v;
  EXPECT_DOUBLE_EQ(Mean(v), 0.0);
  EXPECT_DOUBLE_EQ(Max(v), 0.0);
  EXPECT_DOUBLE_EQ(StdDev(v), 0.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 50), 0.0);
}

TEST(StatsTest, StdDevOfConstantIsZero) {
  std::vector<double> v = {4.0, 4.0, 4.0};
  EXPECT_DOUBLE_EQ(StdDev(v), 0.0);
}

TEST(StatsTest, PercentileInterpolates) {
  std::vector<double> v = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(Percentile(v, 50), 5.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 0), 0.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 100), 10.0);
}

TEST(StatsTest, KendallTauPerfectAgreement) {
  std::vector<double> a = {1, 2, 3, 4};
  std::vector<double> b = {10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(KendallTau(a, b), 1.0);
}

TEST(StatsTest, KendallTauPerfectDisagreement) {
  std::vector<double> a = {1, 2, 3, 4};
  std::vector<double> b = {4, 3, 2, 1};
  EXPECT_DOUBLE_EQ(KendallTau(a, b), -1.0);
}

TEST(StatsTest, KendallTauMismatchedSizesIsZero) {
  EXPECT_DOUBLE_EQ(KendallTau({1, 2}, {1}), 0.0);
}

}  // namespace
}  // namespace catapult
