// Chaos matrix for the resident pattern-selection service (DESIGN.md §13):
// bit-identity of served panels against one-shot RunCatapult, the result
// cache, per-request deadline degradation, and the network fault envelope —
// torn/corrupt frames, stalled and idle clients, mid-request disconnects,
// queue overflow, accept-loop failures, and graceful drain. Failpoints make
// every fault deterministic; the server must never crash, only shed or
// disconnect the offending client.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "src/core/catapult.h"
#include "src/data/molecule_generator.h"
#include "src/dist/wire.h"
#include "src/persist/codec.h"
#include "src/serve/client.h"
#include "src/serve/protocol.h"
#include "src/serve/server.h"
#include "src/util/failpoint.h"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>
#endif

namespace catapult {
namespace {

class ServeTest : public ::testing::Test {
 protected:
  void TearDown() override { failpoint::DisarmAll(); }
};

GraphDatabase MakeDb() {
  MoleculeGeneratorOptions gen;
  gen.num_graphs = 60;
  gen.min_vertices = 8;
  gen.max_vertices = 16;
  gen.seed = 31;
  return GenerateMoleculeDatabase(gen);
}

CatapultOptions FastOptions() {
  CatapultOptions options;
  options.selector.budget.eta_min = 3;
  options.selector.budget.eta_max = 6;
  options.selector.budget.gamma = 6;
  options.selector.walks_per_candidate = 8;
  options.clustering.max_cluster_size = 12;
  options.clustering.fine_mcs.node_budget = 3000;
  options.seed = 99;
  return options;
}

const GraphDatabase& TestDb() {
  static const GraphDatabase* db = new GraphDatabase(MakeDb());
  return *db;
}

// One corpus shared by every server in this suite: preparation is the
// expensive part, and Server::Start adopts a caller-owned corpus exactly so
// it is paid once per database.
const PreparedCorpus& TestCorpus() {
  static const PreparedCorpus* corpus = new PreparedCorpus(
      PrepareCorpus(TestDb(), FastOptions(), RunContext::NoLimit()));
  return *corpus;
}

std::vector<std::string> DbLabelNames(const GraphDatabase& db) {
  std::vector<std::string> names;
  names.reserve(db.labels().size());
  for (size_t l = 0; l < db.labels().size(); ++l) {
    names.push_back(db.labels().Name(static_cast<Label>(l)));
  }
  return names;
}

// The reference answer: the panel bytes a fault-free one-shot RunCatapult
// produces for FastOptions' budget. Every served complete panel must be
// byte-identical to this.
const std::string& ExpectedPanelBytes() {
  static const std::string* bytes = [] {
    const CatapultResult result = RunCatapult(TestDb(), FastOptions());
    serve::Panel panel;
    panel.degraded = result.execution.Degraded();
    panel.labels = DbLabelNames(TestDb());
    panel.patterns = result.selection.patterns;
    return new std::string(serve::EncodePanel(panel));
  }();
  return *bytes;
}

serve::ServeOptions BaseOptions(const std::string& name) {
  serve::ServeOptions options;
  options.socket_path = ::testing::TempDir() + "catapult_" + name + ".sock";
  options.pipeline = FastOptions();
  options.worker_threads = 1;
  options.retry_after_ms = 5.0;
  options.drain_timeout_ms = 1000.0;
  return options;
}

serve::MineRequest FastRequest() {
  serve::MineRequest request;
  request.eta_min = 3;
  request.eta_max = 6;
  request.gamma = 6;
  return request;
}

uint64_t CounterOf(const serve::Server& server, obs::Counter c) {
  return server.Metrics().counters[static_cast<size_t>(c)];
}

// Event-loop counters are published once per poll tick, so they may trail
// the client-observable effect by a few milliseconds (see Server::Metrics).
// Polls until the counter reaches `at_least` and returns its final value.
uint64_t WaitCounterAtLeast(const serve::Server& server, obs::Counter c,
                            uint64_t at_least) {
  uint64_t value = CounterOf(server, c);
  for (int i = 0; i < 2500 && value < at_least; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    value = CounterOf(server, c);
  }
  return value;
}

std::string GraphBytes(const Graph& g) {
  persist::BinaryWriter out;
  persist::EncodeGraph(g, out);
  return out.TakeBuffer();
}

using Kind = serve::ServeClient::MineOutcome::Kind;

// ---------------------------------------------------------------------------
// Protocol payloads (no server).

TEST_F(ServeTest, ProtocolRoundTrips) {
  serve::MineRequest req;
  req.eta_min = 4;
  req.eta_max = 9;
  req.gamma = 17;
  req.deadline_ms = 1234.5;
  req.bypass_cache = true;
  serve::MineRequest req2;
  ASSERT_TRUE(serve::Decode(serve::Encode(req), &req2));
  EXPECT_EQ(req2.eta_min, 4u);
  EXPECT_EQ(req2.eta_max, 9u);
  EXPECT_EQ(req2.gamma, 17u);
  EXPECT_EQ(req2.deadline_ms, 1234.5);
  EXPECT_TRUE(req2.bypass_cache);

  serve::ShedReply shed;
  shed.reason = serve::ShedReason::kMemoryPressure;
  shed.retry_after_ms = 250.0;
  shed.queue_depth = 7;
  serve::ShedReply shed2;
  ASSERT_TRUE(serve::Decode(serve::Encode(shed), &shed2));
  EXPECT_EQ(shed2.reason, serve::ShedReason::kMemoryPressure);
  EXPECT_EQ(shed2.queue_depth, 7u);

  serve::ErrorReply err{"bad budget"};
  serve::ErrorReply err2;
  ASSERT_TRUE(serve::Decode(serve::Encode(err), &err2));
  EXPECT_EQ(err2.message, "bad budget");

  serve::PongReply pong;
  pong.nonce = 99;
  pong.sessions = 3;
  pong.draining = true;
  serve::PongReply pong2;
  ASSERT_TRUE(serve::Decode(serve::Encode(pong), &pong2));
  EXPECT_EQ(pong2.nonce, 99u);
  EXPECT_TRUE(pong2.draining);
}

TEST_F(ServeTest, ProtocolRejectsMalformedPayloads) {
  // Truncation at every prefix must be rejected, never crash or accept.
  const std::string good = serve::Encode(FastRequest());
  for (size_t cut = 0; cut < good.size(); ++cut) {
    serve::MineRequest req;
    EXPECT_FALSE(serve::Decode(good.substr(0, cut), &req)) << "cut=" << cut;
  }
  // Trailing garbage is corruption too (AtEnd contract).
  serve::MineRequest req;
  EXPECT_FALSE(serve::Decode(good + "x", &req));

  // Out-of-range shed reasons are rejected.
  serve::ShedReply shed;
  std::string bytes = serve::Encode(shed);
  bytes[0] = 0x7f;
  serve::ShedReply shed2;
  EXPECT_FALSE(serve::Decode(bytes, &shed2));
}

TEST_F(ServeTest, PanelRoundTripsAndRejectsTruncation) {
  serve::Panel panel;
  panel.degraded = true;
  panel.labels = {"C", "N", "O"};
  SelectedPattern p;
  p.graph.AddVertex(0);
  p.graph.AddVertex(1);
  p.graph.AddEdge(0, 1, 2);
  p.score = 0.5;
  panel.patterns.push_back(p);
  const std::string bytes = serve::EncodePanel(panel);
  serve::Panel panel2;
  ASSERT_TRUE(serve::DecodePanel(bytes, &panel2));
  EXPECT_TRUE(panel2.degraded);
  ASSERT_EQ(panel2.labels.size(), 3u);
  EXPECT_EQ(panel2.labels[1], "N");
  ASSERT_EQ(panel2.patterns.size(), 1u);
  EXPECT_EQ(panel2.patterns[0].graph.NumEdges(), 1u);
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    serve::Panel scratch;
    EXPECT_FALSE(serve::DecodePanel(bytes.substr(0, cut), &scratch));
  }
}

// ---------------------------------------------------------------------------
// Served panels: bit-identity against the one-shot pipeline.

TEST_F(ServeTest, ServedPanelBitIdenticalToOneShotRun) {
  serve::Server server;
  ASSERT_EQ(server.Start(TestDb(), BaseOptions("identity"), &TestCorpus()),
            "");
  serve::ServeClient client;
  ASSERT_EQ(client.Connect(server.socket_path()), "");
  const auto outcome = client.Mine(FastRequest());
  ASSERT_EQ(outcome.kind, Kind::kPanel) << outcome.error;
  EXPECT_FALSE(outcome.reply.cache_hit);
  EXPECT_FALSE(outcome.panel.degraded);
  // The strongest possible claim: the served panel's encoded bytes equal
  // the bytes a fault-free one-shot RunCatapult produces.
  EXPECT_EQ(outcome.reply.panel, ExpectedPanelBytes());
  server.Stop();
}

TEST_F(ServeTest, CachedReplyBitIdenticalToRecomputed) {
  serve::Server server;
  ASSERT_EQ(server.Start(TestDb(), BaseOptions("cache"), &TestCorpus()), "");
  serve::ServeClient client;
  ASSERT_EQ(client.Connect(server.socket_path()), "");

  const auto first = client.Mine(FastRequest());
  ASSERT_EQ(first.kind, Kind::kPanel) << first.error;
  EXPECT_FALSE(first.reply.cache_hit);

  const auto cached = client.Mine(FastRequest());
  ASSERT_EQ(cached.kind, Kind::kPanel) << cached.error;
  EXPECT_TRUE(cached.reply.cache_hit);
  EXPECT_EQ(cached.reply.panel, first.reply.panel);

  // bypass_cache forces a recomputation; determinism makes it byte-equal.
  serve::MineRequest bypass = FastRequest();
  bypass.bypass_cache = true;
  const auto recomputed = client.Mine(bypass);
  ASSERT_EQ(recomputed.kind, Kind::kPanel) << recomputed.error;
  EXPECT_FALSE(recomputed.reply.cache_hit);
  EXPECT_EQ(recomputed.reply.panel, first.reply.panel);

  EXPECT_GE(WaitCounterAtLeast(server, obs::Counter::kServeCacheHits, 1), 1u);
  EXPECT_GE(WaitCounterAtLeast(server, obs::Counter::kServeCacheMisses, 1),
            1u);
  server.Stop();
}

TEST_F(ServeTest, DistinctBudgetsAreDistinctCacheEntries) {
  serve::Server server;
  ASSERT_EQ(server.Start(TestDb(), BaseOptions("budgets"), &TestCorpus()),
            "");
  serve::ServeClient client;
  ASSERT_EQ(client.Connect(server.socket_path()), "");
  serve::MineRequest small = FastRequest();
  small.gamma = 4;
  const auto a = client.Mine(FastRequest());
  const auto b = client.Mine(small);
  ASSERT_EQ(a.kind, Kind::kPanel) << a.error;
  ASSERT_EQ(b.kind, Kind::kPanel) << b.error;
  EXPECT_FALSE(b.reply.cache_hit);
  EXPECT_EQ(a.panel.patterns.size(), 6u);
  EXPECT_EQ(b.panel.patterns.size(), 4u);
  // And the corpus answers any budget identically to a one-shot run with
  // that budget.
  CatapultOptions one_shot = FastOptions();
  one_shot.selector.budget.gamma = 4;
  const CatapultResult reference = RunCatapult(TestDb(), one_shot);
  ASSERT_EQ(reference.selection.patterns.size(), b.panel.patterns.size());
  serve::Panel reference_panel;
  reference_panel.degraded = reference.execution.Degraded();
  reference_panel.labels = DbLabelNames(TestDb());
  reference_panel.patterns = reference.selection.patterns;
  EXPECT_EQ(serve::EncodePanel(reference_panel), b.reply.panel);
  server.Stop();
}

// ---------------------------------------------------------------------------
// Deadline degradation through the server path.

TEST_F(ServeTest, DeadlineExpiryDuringSelectionYieldsDegradedPanel) {
  serve::Server server;
  ASSERT_EQ(server.Start(TestDb(), BaseOptions("deadline"), &TestCorpus()),
            "");
  serve::ServeClient client;
  ASSERT_EQ(client.Connect(server.socket_path()), "");

  // Force the selection loop to observe expiry on its first poll: the
  // degradation ladder must still deliver a full, size-conforming panel of
  // frequent-edge fallback patterns — degraded, valid, never an error.
  failpoint::Arm("selector.iteration");
  const auto degraded = client.Mine(FastRequest());
  failpoint::Disarm("selector.iteration");
  ASSERT_EQ(degraded.kind, Kind::kPanel) << degraded.error;
  EXPECT_TRUE(degraded.panel.degraded);
  EXPECT_FALSE(degraded.panel.patterns.empty());
  EXPECT_GE(CounterOf(server, obs::Counter::kServeDegraded), 1u);

  // Degraded panels must not poison the cache: the next request recomputes
  // and returns the fault-free bytes.
  const auto recovered = client.Mine(FastRequest());
  ASSERT_EQ(recovered.kind, Kind::kPanel) << recovered.error;
  EXPECT_FALSE(recovered.reply.cache_hit);
  EXPECT_FALSE(recovered.panel.degraded);
  EXPECT_EQ(recovered.reply.panel, ExpectedPanelBytes());
  server.Stop();
}

TEST_F(ServeTest, TinyRealDeadlineStillAnswers) {
  serve::Server server;
  ASSERT_EQ(server.Start(TestDb(), BaseOptions("tinydl"), &TestCorpus()), "");
  serve::ServeClient client;
  ASSERT_EQ(client.Connect(server.socket_path()), "");
  serve::MineRequest request = FastRequest();
  request.deadline_ms = 1.0;  // expires almost immediately
  const auto outcome = client.Mine(request);
  // Anytime semantics: whatever the clock did, the reply is a panel.
  ASSERT_EQ(outcome.kind, Kind::kPanel) << outcome.error;
  server.Stop();
}

// ---------------------------------------------------------------------------
// Poisoned streams: torn and corrupt frames.

TEST_F(ServeTest, TornFrameDisconnectsOnlyThatClient) {
  serve::Server server;
  ASSERT_EQ(server.Start(TestDb(), BaseOptions("torn"), &TestCorpus()), "");
  serve::ServeClient bad;
  ASSERT_EQ(bad.Connect(server.socket_path()), "");
  // A frame with valid length fields but a wrong magic: framing is
  // unrecoverable, the server must drop this client.
  std::string garbage =
      dist::EncodeFrame(dist::FrameType::kServeRequest,
                        serve::Encode(FastRequest()));
  garbage[0] = 'X';
  ASSERT_TRUE(bad.SendRawBytes(garbage));
  dist::Frame frame;
  EXPECT_NE(bad.ReadFrame(&frame, 5000.0), "");  // disconnected, no reply
  EXPECT_GE(
      WaitCounterAtLeast(server, obs::Counter::kServePoisonedStreams, 1), 1u);

  // The process survives and a healthy client still gets the exact panel.
  serve::ServeClient good;
  ASSERT_EQ(good.Connect(server.socket_path()), "");
  const auto outcome = good.Mine(FastRequest());
  ASSERT_EQ(outcome.kind, Kind::kPanel) << outcome.error;
  EXPECT_EQ(outcome.reply.panel, ExpectedPanelBytes());
  server.Stop();
}

TEST_F(ServeTest, CorruptChecksumPoisonsStream) {
  serve::Server server;
  ASSERT_EQ(server.Start(TestDb(), BaseOptions("crc"), &TestCorpus()), "");
  serve::ServeClient bad;
  ASSERT_EQ(bad.Connect(server.socket_path()), "");
  std::string frame_bytes =
      dist::EncodeFrame(dist::FrameType::kServeRequest,
                        serve::Encode(FastRequest()));
  frame_bytes.back() ^= 0x5a;  // flip payload bits; CRC now mismatches
  ASSERT_TRUE(bad.SendRawBytes(frame_bytes));
  dist::Frame frame;
  EXPECT_NE(bad.ReadFrame(&frame, 5000.0), "");
  EXPECT_GE(
      WaitCounterAtLeast(server, obs::Counter::kServePoisonedStreams, 1), 1u);
  server.Stop();
}

TEST_F(ServeTest, UnexpectedFrameTypePoisonsStream) {
  serve::Server server;
  ASSERT_EQ(server.Start(TestDb(), BaseOptions("unexpected"), &TestCorpus()),
            "");
  serve::ServeClient bad;
  ASSERT_EQ(bad.Connect(server.socket_path()), "");
  // A worker-pipe frame type has no business on a serve socket.
  dist::HeartbeatFrame heartbeat;
  ASSERT_TRUE(bad.SendRawBytes(
      dist::EncodeFrame(dist::FrameType::kHeartbeat, Encode(heartbeat))));
  dist::Frame frame;
  EXPECT_NE(bad.ReadFrame(&frame, 5000.0), "");
  EXPECT_GE(
      WaitCounterAtLeast(server, obs::Counter::kServePoisonedStreams, 1), 1u);
  server.Stop();
}

TEST_F(ServeTest, HalfFrameThenDisconnectIsNotCorruption) {
  serve::Server server;
  ASSERT_EQ(server.Start(TestDb(), BaseOptions("half"), &TestCorpus()), "");
  {
    serve::ServeClient flaky;
    ASSERT_EQ(flaky.Connect(server.socket_path()), "");
    const std::string frame_bytes =
        dist::EncodeFrame(dist::FrameType::kServeRequest,
                          serve::Encode(FastRequest()));
    ASSERT_TRUE(flaky.SendRawBytes(frame_bytes.substr(0, 7)));
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    flaky.Close();  // a dead peer, not a corrupt one
  }
  // Poison and disconnect are counted in the same tick the close happens,
  // so once the disconnect is visible a poison (had there been one) would
  // be too.
  EXPECT_GE(WaitCounterAtLeast(server, obs::Counter::kServeDisconnects, 1),
            1u);
  EXPECT_EQ(CounterOf(server, obs::Counter::kServePoisonedStreams), 0u);
  serve::ServeClient good;
  ASSERT_EQ(good.Connect(server.socket_path()), "");
  const auto outcome = good.Mine(FastRequest());
  ASSERT_EQ(outcome.kind, Kind::kPanel) << outcome.error;
  server.Stop();
}

// ---------------------------------------------------------------------------
// Admission control and load shedding.

TEST_F(ServeTest, OverloadShedsWithRetryAfter) {
  serve::Server server;
  ASSERT_EQ(server.Start(TestDb(), BaseOptions("overload"), &TestCorpus()),
            "");
  serve::ServeClient client;
  ASSERT_EQ(client.Connect(server.socket_path()), "");

  failpoint::Arm("serve.overload");
  const auto shed = client.Mine(FastRequest());
  failpoint::Disarm("serve.overload");
  ASSERT_EQ(shed.kind, Kind::kShed) << shed.error;
  EXPECT_EQ(shed.shed.reason, serve::ShedReason::kQueueFull);
  EXPECT_EQ(shed.shed.retry_after_ms, 5.0);

  failpoint::Arm("serve.memory_pressure");
  const auto mem = client.Mine(FastRequest());
  failpoint::Disarm("serve.memory_pressure");
  ASSERT_EQ(mem.kind, Kind::kShed) << mem.error;
  EXPECT_EQ(mem.shed.reason, serve::ShedReason::kMemoryPressure);

  // The connection survived both sheds; MineWithRetry now succeeds.
  const auto outcome = client.MineWithRetry(FastRequest(), 3);
  ASSERT_EQ(outcome.kind, Kind::kPanel) << outcome.error;
  EXPECT_EQ(outcome.reply.panel, ExpectedPanelBytes());
  EXPECT_GE(WaitCounterAtLeast(server, obs::Counter::kServeShed, 2), 2u);
  server.Stop();
}

TEST_F(ServeTest, RealQueueOverflowSheds) {
  serve::ServeOptions options = BaseOptions("queue");
  options.max_queue_depth = 1;
  serve::Server server;
  ASSERT_EQ(server.Start(TestDb(), options, &TestCorpus()), "");
  serve::ServeClient client;
  ASSERT_EQ(client.Connect(server.socket_path()), "");

  // Hold the single worker, then pipeline three requests: the first goes to
  // the worker, the second fills the queue, the third must be shed. Frames
  // are processed in order, so a pong proves the preceding request was
  // admitted; polling queue_depth alone races with admission itself.
  failpoint::Arm("serve.worker_hold");
  const std::string request_frame = dist::EncodeFrame(
      dist::FrameType::kServeRequest, serve::Encode(FastRequest()));
  serve::PongReply pong;
  ASSERT_TRUE(client.SendRawBytes(request_frame));
  ASSERT_EQ(client.Ping(&pong), "");  // request 1 admitted
  // Wait for the held worker to pick the first job up (queue drains to 0).
  for (int i = 0; i < 500 && server.queue_depth() != 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_EQ(server.queue_depth(), 0u);
  ASSERT_TRUE(client.SendRawBytes(request_frame));
  ASSERT_EQ(client.Ping(&pong), "");  // request 2 admitted (queue now full)
  ASSERT_EQ(server.queue_depth(), 1u);
  ASSERT_TRUE(client.SendRawBytes(request_frame));  // queue full -> shed

  // The shed reply arrives first (written at admission time)...
  dist::Frame frame;
  ASSERT_EQ(client.ReadFrame(&frame, 10000.0), "");
  ASSERT_EQ(frame.type, dist::FrameType::kServeShed);
  serve::ShedReply shed;
  ASSERT_TRUE(serve::Decode(frame.payload, &shed));
  EXPECT_EQ(shed.reason, serve::ShedReason::kQueueFull);

  // ...then the two held requests complete once the hold lifts.
  failpoint::Disarm("serve.worker_hold");
  for (int reply = 0; reply < 2; ++reply) {
    ASSERT_EQ(client.ReadFrame(&frame, 30000.0), "");
    ASSERT_EQ(frame.type, dist::FrameType::kServeResponse);
    serve::MineReply mine_reply;
    ASSERT_TRUE(serve::Decode(frame.payload, &mine_reply));
    EXPECT_EQ(mine_reply.panel, ExpectedPanelBytes());
  }
  EXPECT_GE(WaitCounterAtLeast(server, obs::Counter::kServeShed, 1), 1u);
  server.Stop();
}

TEST_F(ServeTest, SessionCapSheds) {
  serve::ServeOptions options = BaseOptions("sessions");
  options.max_sessions = 1;
  serve::Server server;
  ASSERT_EQ(server.Start(TestDb(), options, &TestCorpus()), "");
  serve::ServeClient first;
  ASSERT_EQ(first.Connect(server.socket_path()), "");
  serve::PongReply pong;
  ASSERT_EQ(first.Ping(&pong), "");  // first session is fully registered

  serve::ServeClient second;
  ASSERT_EQ(second.Connect(server.socket_path()), "");
  // The server volunteers a shed reply and hangs up.
  dist::Frame frame;
  ASSERT_EQ(second.ReadFrame(&frame, 5000.0), "");
  ASSERT_EQ(frame.type, dist::FrameType::kServeShed);
  serve::ShedReply shed;
  ASSERT_TRUE(serve::Decode(frame.payload, &shed));
  EXPECT_EQ(shed.reason, serve::ShedReason::kSessionLimit);
  EXPECT_NE(second.ReadFrame(&frame, 5000.0), "");  // then disconnected

  // The first session is unaffected.
  ASSERT_EQ(first.Ping(&pong), "");
  server.Stop();
}

TEST_F(ServeTest, BadBudgetGetsErrorReplyConnectionSurvives) {
  serve::Server server;
  ASSERT_EQ(server.Start(TestDb(), BaseOptions("badopts"), &TestCorpus()),
            "");
  serve::ServeClient client;
  ASSERT_EQ(client.Connect(server.socket_path()), "");

  serve::MineRequest bad = FastRequest();
  bad.eta_min = 2;  // violates Definition 3.1
  auto outcome = client.Mine(bad);
  ASSERT_EQ(outcome.kind, Kind::kError);
  EXPECT_NE(outcome.error.find("eta_min"), std::string::npos);

  bad = FastRequest();
  bad.gamma = 0;
  outcome = client.Mine(bad);
  ASSERT_EQ(outcome.kind, Kind::kError);

  bad = FastRequest();
  bad.protocol_version = 999;
  outcome = client.Mine(bad);
  ASSERT_EQ(outcome.kind, Kind::kError);
  EXPECT_NE(outcome.error.find("version"), std::string::npos);

  // Rejections are per-request, not per-connection.
  outcome = client.Mine(FastRequest());
  ASSERT_EQ(outcome.kind, Kind::kPanel) << outcome.error;
  server.Stop();
}

// ---------------------------------------------------------------------------
// Observability: request ids, the structured request log, and the admin
// endpoint (DESIGN.md §16).

TEST_F(ServeTest, ShedAndErrorRepliesCarryDistinctRequestIds) {
  serve::Server server;
  ASSERT_EQ(server.Start(TestDb(), BaseOptions("reqids"), &TestCorpus()), "");
  serve::ServeClient client;
  ASSERT_EQ(client.Connect(server.socket_path()), "");

  failpoint::Arm("serve.overload");
  const auto shed_a = client.Mine(FastRequest());
  const auto shed_b = client.Mine(FastRequest());
  failpoint::Disarm("serve.overload");
  ASSERT_EQ(shed_a.kind, Kind::kShed) << shed_a.error;
  ASSERT_EQ(shed_b.kind, Kind::kShed) << shed_b.error;
  EXPECT_NE(shed_a.request_id, 0u);
  EXPECT_NE(shed_b.request_id, 0u);
  EXPECT_NE(shed_a.request_id, shed_b.request_id);
  EXPECT_EQ(shed_a.request_id, shed_a.shed.request_id);

  serve::MineRequest bad = FastRequest();
  bad.eta_min = 2;
  const auto err = client.Mine(bad);
  ASSERT_EQ(err.kind, Kind::kError);
  EXPECT_NE(err.request_id, 0u);
  EXPECT_NE(err.request_id, shed_a.request_id);
  EXPECT_NE(err.request_id, shed_b.request_id);

  // MineWithRetry surfaces each attempt's server-assigned id through the
  // retry log, so a client's stderr joins against the server's
  // --request-log lines.
  failpoint::Arm("serve.overload", 1);
  std::string retry_log;
  const auto outcome =
      client.MineWithRetry(FastRequest(), 3, 30000.0, &retry_log);
  ASSERT_EQ(outcome.kind, Kind::kPanel) << outcome.error;
  EXPECT_NE(retry_log.find("request_id="), std::string::npos);
  EXPECT_NE(retry_log.find("shed=queue_full"), std::string::npos);
  // Complete panels carry no id on the wire today; the outcome says so.
  EXPECT_EQ(outcome.request_id, 0u);
  server.Stop();
}

TEST_F(ServeTest, RequestLogRecordsOneLinePerOutcome) {
  serve::ServeOptions options = BaseOptions("reqlog");
  options.request_log_path = ::testing::TempDir() + "catapult_reqlog.jsonl";
  options.slow_request_ms = 0.0001;  // any computed panel counts as slow
  std::remove(options.request_log_path.c_str());
  serve::Server server;
  ASSERT_EQ(server.Start(TestDb(), options, &TestCorpus()), "");
  serve::ServeClient client;
  ASSERT_EQ(client.Connect(server.socket_path()), "");

  ASSERT_EQ(client.Mine(FastRequest()).kind, Kind::kPanel);  // -> ok
  ASSERT_EQ(client.Mine(FastRequest()).kind, Kind::kPanel);  // -> cache_hit
  // Cache hits are answered before admission control, so the shed probe
  // must bypass the cache to reach the overloaded queue.
  serve::MineRequest uncached = FastRequest();
  uncached.bypass_cache = true;
  failpoint::Arm("serve.overload", 1);
  ASSERT_EQ(client.Mine(uncached).kind, Kind::kShed);  // -> shed
  serve::MineRequest bad = FastRequest();
  bad.gamma = 0;
  ASSERT_EQ(client.Mine(bad).kind, Kind::kError);  // -> error
  server.Stop();                                   // flushes the async log

  std::ifstream in(options.request_log_path);
  ASSERT_TRUE(in.good()) << options.request_log_path;
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  // One client issuing requests back-to-back observes completion order, and
  // every event is enqueued before its reply is queued to the session.
  ASSERT_EQ(lines.size(), 4u);
  for (const std::string& l : lines) {
    EXPECT_EQ(l.front(), '{') << l;
    EXPECT_EQ(l.back(), '}') << l;
    EXPECT_NE(l.find("\"request_id\":"), std::string::npos) << l;
    EXPECT_NE(l.find("\"queue_wait_ms\":"), std::string::npos) << l;
    EXPECT_NE(l.find("\"worker\":"), std::string::npos) << l;
  }
  EXPECT_NE(lines[0].find("\"outcome\":\"ok\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"budget\":\"3-6x6\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"slow\":true"), std::string::npos);
  EXPECT_NE(lines[1].find("\"outcome\":\"cache_hit\""), std::string::npos);
  EXPECT_NE(lines[2].find("\"outcome\":\"shed\""), std::string::npos);
  EXPECT_NE(lines[2].find("\"detail\":\"queue_full\""), std::string::npos);
  EXPECT_NE(lines[3].find("\"outcome\":\"error\""), std::string::npos);
  EXPECT_GE(CounterOf(server, obs::Counter::kServeSlowRequests), 1u);
  std::remove(options.request_log_path.c_str());
}

#if defined(__unix__) || defined(__APPLE__)
// Raw line-oriented admin exchange: connect, send one request line, read to
// EOF. The endpoint speaks enough HTTP for curl, but a bare path works too.
std::string ServeAdminExchange(const std::string& socket_path,
                               const std::string& request) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::snprintf(addr.sun_path, sizeof(addr.sun_path), "%s",
                socket_path.c_str());
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  (void)!::write(fd, request.data(), request.size());
  std::string reply;
  char buf[4096];
  ssize_t n;
  while ((n = ::read(fd, buf, sizeof(buf))) > 0) reply.append(buf, n);
  ::close(fd);
  return reply;
}

TEST_F(ServeTest, AdminEndpointScrapesMetricsAndStatuszMidFlight) {
  serve::ServeOptions options = BaseOptions("admin");
  const std::string admin_path =
      ::testing::TempDir() + "catapult_admin_serve.sock";
  options.admin_listen = "unix:" + admin_path;
  serve::Server server;
  ASSERT_EQ(server.Start(TestDb(), options, &TestCorpus()), "");
  serve::ServeClient client;
  ASSERT_EQ(client.Connect(server.socket_path()), "");
  ASSERT_EQ(client.Mine(FastRequest()).kind, Kind::kPanel);

  // Scrape while the serve socket stays responsive: /metrics is Prometheus
  // text over the merged snapshot, so serve counters appear with the
  // catapult_ prefix and dots mapped to underscores.
  const std::string metrics = ServeAdminExchange(admin_path, "/metrics\n");
  EXPECT_NE(metrics.find("200"), std::string::npos);
  EXPECT_NE(metrics.find("# TYPE catapult_serve_requests counter"),
            std::string::npos);
  EXPECT_NE(metrics.find("catapult_serve_responses "), std::string::npos);
  EXPECT_NE(metrics.find("catapult_serve_request_millis_bucket"),
            std::string::npos);

  const std::string statusz =
      ServeAdminExchange(admin_path, "GET /statusz HTTP/1.1\r\n\r\n");
  EXPECT_NE(statusz.find("application/json"), std::string::npos);
  EXPECT_NE(statusz.find("\"draining\":false"), std::string::npos);
  EXPECT_NE(statusz.find("\"fingerprint\":"), std::string::npos);
  EXPECT_NE(statusz.find("\"requests_assigned\":"), std::string::npos);

  const std::string healthz = ServeAdminExchange(admin_path, "/healthz\n");
  EXPECT_NE(healthz.find("ok"), std::string::npos);

  // The serve socket answered during and after the scrapes.
  serve::PongReply pong;
  ASSERT_EQ(client.Ping(&pong), "");
  server.Stop();
}
#endif

// ---------------------------------------------------------------------------
// Client misbehaviour: disconnects, stalls, idleness.

TEST_F(ServeTest, MidRequestDisconnectCancelsAndServerSurvives) {
  serve::Server server;
  ASSERT_EQ(server.Start(TestDb(), BaseOptions("disconnect"), &TestCorpus()),
            "");
  {
    serve::ServeClient vanishing;
    ASSERT_EQ(vanishing.Connect(server.socket_path()), "");
    failpoint::Arm("serve.worker_hold");
    ASSERT_TRUE(vanishing.SendRawBytes(dist::EncodeFrame(
        dist::FrameType::kServeRequest, serve::Encode(FastRequest()))));
    serve::PongReply pong;
    ASSERT_EQ(vanishing.Ping(&pong), "");  // request admitted
    // Wait until the worker holds the job, then vanish mid-request.
    for (int i = 0; i < 500 && server.queue_depth() != 0; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    vanishing.Close();
  }
  // Give the event loop a moment to observe the hangup and cancel the job;
  // the held worker exits its hold via the cancelled token.
  for (int i = 0; i < 500 && server.active_sessions() != 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_EQ(server.active_sessions(), 0u);
  failpoint::Disarm("serve.worker_hold");

  serve::ServeClient good;
  ASSERT_EQ(good.Connect(server.socket_path()), "");
  const auto outcome = good.Mine(FastRequest());
  ASSERT_EQ(outcome.kind, Kind::kPanel) << outcome.error;
  EXPECT_EQ(outcome.reply.panel, ExpectedPanelBytes());
  EXPECT_GE(WaitCounterAtLeast(server, obs::Counter::kServeDisconnects, 1),
            1u);
  server.Stop();
}

TEST_F(ServeTest, StalledClientWriteTimesOut) {
  serve::ServeOptions options = BaseOptions("stall");
  options.write_timeout_ms = 50.0;
  serve::Server server;
  ASSERT_EQ(server.Start(TestDb(), options, &TestCorpus()), "");
  serve::ServeClient warm;
  ASSERT_EQ(warm.Connect(server.socket_path()), "");
  ASSERT_EQ(warm.Mine(FastRequest()).kind, Kind::kPanel);  // prime the cache

  // With writes stalled, the cached reply sits in the session's out-buffer
  // making no progress; the write timeout must cut the client loose.
  failpoint::Arm("serve.write_stall");
  serve::ServeClient stalled;
  ASSERT_EQ(stalled.Connect(server.socket_path()), "");
  ASSERT_TRUE(stalled.SendRawBytes(dist::EncodeFrame(
      dist::FrameType::kServeRequest, serve::Encode(FastRequest()))));
  dist::Frame frame;
  EXPECT_NE(stalled.ReadFrame(&frame, 5000.0), "");  // disconnected
  failpoint::Disarm("serve.write_stall");
  EXPECT_GE(WaitCounterAtLeast(server, obs::Counter::kServeWriteTimeouts, 1),
            1u);
  server.Stop();
}

TEST_F(ServeTest, IdleSessionIsReaped) {
  serve::ServeOptions options = BaseOptions("idle");
  options.idle_timeout_ms = 50.0;
  serve::Server server;
  ASSERT_EQ(server.Start(TestDb(), options, &TestCorpus()), "");
  serve::ServeClient idle;
  ASSERT_EQ(idle.Connect(server.socket_path()), "");
  serve::PongReply pong;
  ASSERT_EQ(idle.Ping(&pong), "");
  dist::Frame frame;
  EXPECT_NE(idle.ReadFrame(&frame, 5000.0), "");  // reaped after 50ms idle
  EXPECT_GE(WaitCounterAtLeast(server, obs::Counter::kServeIdleReaped, 1),
            1u);
  server.Stop();
}

TEST_F(ServeTest, AcceptFailureBacksOffThenRecovers) {
  serve::ServeOptions options = BaseOptions("emfile");
  options.accept_retry_ms = 20.0;
  serve::Server server;
  ASSERT_EQ(server.Start(TestDb(), options, &TestCorpus()), "");
  // The next two accept sweeps report descriptor exhaustion; the listener
  // must back off (cooldown) instead of spinning, then recover.
  failpoint::Arm("serve.accept_fail", 2);
  serve::ServeClient client;
  ASSERT_EQ(client.Connect(server.socket_path()), "");  // sits in the backlog
  serve::PongReply pong;
  ASSERT_EQ(client.Ping(&pong, 10000.0), "");  // accepted after the cooldown
  EXPECT_GE(
      WaitCounterAtLeast(server, obs::Counter::kServeAcceptFailures, 1), 1u);
  server.Stop();
}

// ---------------------------------------------------------------------------
// Drain and shutdown.

TEST_F(ServeTest, DrainShedsNewRequestsAndStopRemovesSocket) {
  serve::Server server;
  ASSERT_EQ(server.Start(TestDb(), BaseOptions("drain"), &TestCorpus()), "");
  serve::ServeClient client;
  ASSERT_EQ(client.Connect(server.socket_path()), "");
  ASSERT_EQ(client.Mine(FastRequest()).kind, Kind::kPanel);

  server.BeginDrain();
  const auto shed = client.Mine(FastRequest());
  ASSERT_EQ(shed.kind, Kind::kShed) << shed.error;
  EXPECT_EQ(shed.shed.reason, serve::ShedReason::kDraining);

  // New connections are refused once draining (socket closed + unlinked).
  for (int i = 0; i < 500; ++i) {
    serve::ServeClient late;
    if (!late.Connect(server.socket_path()).empty()) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  serve::ServeClient late;
  EXPECT_NE(late.Connect(server.socket_path()), "");

  server.Stop();
#if defined(__unix__) || defined(__APPLE__)
  EXPECT_NE(::access(server.socket_path().c_str(), F_OK), 0);
#endif
}

TEST_F(ServeTest, StopWithHeldWorkCancelsInsteadOfHanging) {
  serve::ServeOptions options = BaseOptions("stophold");
  options.drain_timeout_ms = 100.0;
  serve::Server server;
  ASSERT_EQ(server.Start(TestDb(), options, &TestCorpus()), "");
  serve::ServeClient client;
  ASSERT_EQ(client.Connect(server.socket_path()), "");
  failpoint::Arm("serve.worker_hold");
  ASSERT_TRUE(client.SendRawBytes(dist::EncodeFrame(
      dist::FrameType::kServeRequest, serve::Encode(FastRequest()))));
  serve::PongReply pong;
  ASSERT_EQ(client.Ping(&pong), "");  // request admitted
  for (int i = 0; i < 500 && server.queue_depth() != 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  // Stop must not deadlock on the held job: after drain_timeout_ms it
  // cancels the work and joins everything.
  server.Stop();
  failpoint::Disarm("serve.worker_hold");
  SUCCEED();
}

TEST_F(ServeTest, PingReportsServerState) {
  serve::Server server;
  ASSERT_EQ(server.Start(TestDb(), BaseOptions("ping"), &TestCorpus()), "");
  serve::ServeClient client;
  ASSERT_EQ(client.Connect(server.socket_path()), "");
  serve::PongReply pong;
  ASSERT_EQ(client.Ping(&pong), "");
  EXPECT_EQ(pong.sessions, 1u);
  EXPECT_FALSE(pong.draining);
  server.BeginDrain();
  ASSERT_EQ(client.Ping(&pong), "");
  EXPECT_TRUE(pong.draining);
  server.Stop();
}

// ---------------------------------------------------------------------------
// PreparedCorpus (the core-layer contract the server builds on).

TEST_F(ServeTest, PreparedCorpusSelectionMatchesOneShotAcrossBudgets) {
  const PreparedCorpus& corpus = TestCorpus();
  ASSERT_TRUE(corpus.ok());
  EXPECT_TRUE(corpus.complete);
  for (const size_t gamma : {3u, 6u}) {
    CatapultOptions options = FastOptions();
    options.selector.budget.gamma = gamma;
    const CatapultResult via_corpus =
        RunCatapultSelection(TestDb(), corpus, options, RunContext::NoLimit());
    const CatapultResult one_shot = RunCatapult(TestDb(), options);
    ASSERT_TRUE(via_corpus.ok());
    ASSERT_EQ(via_corpus.selection.patterns.size(),
              one_shot.selection.patterns.size());
    for (size_t i = 0; i < via_corpus.selection.patterns.size(); ++i) {
      const SelectedPattern& a = via_corpus.selection.patterns[i];
      const SelectedPattern& b = one_shot.selection.patterns[i];
      EXPECT_EQ(GraphBytes(a.graph), GraphBytes(b.graph));
      EXPECT_EQ(a.score, b.score);
      EXPECT_EQ(a.ccov, b.ccov);
      EXPECT_EQ(a.div, b.div);
    }
  }
}

TEST_F(ServeTest, PreparedCorpusRejectsBadOptions) {
  CatapultOptions bad = FastOptions();
  bad.selector.budget.eta_min = 1;
  const PreparedCorpus corpus =
      PrepareCorpus(TestDb(), bad, RunContext::NoLimit());
  EXPECT_FALSE(corpus.ok());
  const CatapultResult result =
      RunCatapultSelection(TestDb(), TestCorpus(), bad, RunContext::NoLimit());
  EXPECT_FALSE(result.ok());
}

}  // namespace
}  // namespace catapult
