// Tests of the observability layer (DESIGN.md Section 11): the JSON writer,
// the log2 histogram bucketing, thread-local shard merging across the
// ThreadPool, the deterministic span tracer, the report schema with its
// metrics section — and the layer's central contract, asserted end-to-end:
// a run with metrics and tracing attached produces bit-identical patterns
// and checkpoint bytes to a run without them, at 1 and at 4 threads.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/core/catapult.h"
#include "src/core/report.h"
#include "src/data/molecule_generator.h"
#include "src/graph/algorithms.h"
#include "src/obs/admin.h"
#include "src/obs/clock.h"
#include "src/obs/export.h"
#include "src/obs/json.h"
#include "src/obs/metrics.h"
#include "src/obs/reqlog.h"
#include "src/obs/trace.h"
#include "src/util/thread_pool.h"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#endif

namespace catapult {
namespace {

// False when CATAPULT_DISABLE_OBS compiled the recording helpers out; the
// tests below then still assert the zero-effect contract (everything builds
// and runs, results unchanged) but skip assertions on recorded values.
constexpr bool ObsCompiledIn() {
#if defined(CATAPULT_DISABLE_OBS)
  return false;
#else
  return true;
#endif
}

// ---------------------------------------------------------------------------
// JsonWriter

TEST(JsonWriterTest, CompactDocument) {
  obs::JsonWriter w;
  w.BeginObject();
  w.Key("a").Value(uint64_t{1});
  w.Key("b").BeginArray().Value(2).Value(3).EndArray();
  w.Key("c").BeginObject().Key("d").Value(true).EndObject();
  w.EndObject();
  EXPECT_EQ(w.str(), R"({"a":1,"b":[2,3],"c":{"d":true}})");
}

TEST(JsonWriterTest, PrettyDocumentMatchesReportShape) {
  obs::JsonWriter w(2);
  w.BeginObject();
  w.Key("patterns").BeginArray().EndArray();
  w.EndObject();
  EXPECT_EQ(w.str(), "{\n  \"patterns\": [\n  ]\n}");
}

TEST(JsonWriterTest, EscapesEverything) {
  obs::JsonWriter w;
  w.BeginObject();
  w.Key("k\"ey").Value(std::string("a\\b\n\t\r\b\f\x01z"));
  w.EndObject();
  EXPECT_EQ(w.str(),
            "{\"k\\\"ey\":\"a\\\\b\\n\\t\\r\\b\\f\\u0001z\"}");
}

TEST(JsonWriterTest, NonFiniteDoublesBecomeNull) {
  obs::JsonWriter w;
  w.BeginArray();
  w.Value(1.5);
  w.Value(std::numeric_limits<double>::infinity());
  w.Value(std::numeric_limits<double>::quiet_NaN());
  w.EndArray();
  EXPECT_EQ(w.str(), "[1.5,null,null]");
}

// ---------------------------------------------------------------------------
// Histogram bucketing

TEST(MetricsTest, HistBucketEdges) {
  EXPECT_EQ(obs::HistBucket(0), 0u);
  EXPECT_EQ(obs::HistBucket(1), 1u);
  EXPECT_EQ(obs::HistBucket(2), 2u);
  EXPECT_EQ(obs::HistBucket(3), 2u);
  EXPECT_EQ(obs::HistBucket(4), 3u);
  EXPECT_EQ(obs::HistBucket(7), 3u);
  EXPECT_EQ(obs::HistBucket(8), 4u);
  EXPECT_EQ(obs::HistBucket(uint64_t{1} << 62), 63u);
  EXPECT_EQ(obs::HistBucket(uint64_t{1} << 63), 64u);
  EXPECT_EQ(obs::HistBucket(UINT64_MAX), 64u);
}

TEST(MetricsTest, HistDataRecordAndMerge) {
  obs::HistData a;
  a.Record(1);
  a.Record(100);
  obs::HistData b;
  b.Record(7);
  a.MergeFrom(b);
  EXPECT_EQ(a.count, 3u);
  EXPECT_EQ(a.sum, 108u);
  EXPECT_EQ(a.min, 1u);
  EXPECT_EQ(a.max, 100u);
  EXPECT_DOUBLE_EQ(a.Mean(), 36.0);
}

TEST(MetricsTest, QuantileInterpolatesLog2Buckets) {
  obs::HistData empty;
  EXPECT_EQ(empty.Quantile(0.5), 0u);

  obs::HistData same;
  for (int i = 0; i < 100; ++i) same.Record(7);
  EXPECT_EQ(same.Quantile(0.5), 7u);
  EXPECT_EQ(same.Quantile(0.95), 7u);
  EXPECT_EQ(same.Quantile(0.99), 7u);

  obs::HistData spread;
  spread.Record(1);
  spread.Record(1000);
  EXPECT_EQ(spread.Quantile(0.0), 1u);
  EXPECT_EQ(spread.Quantile(1.0), 1000u);
  // p50's target rank lands in the first populated bucket (value 1).
  EXPECT_EQ(spread.Quantile(0.5), 1u);
  // Quantiles are always clamped into [min, max].
  for (double p : {0.01, 0.25, 0.5, 0.9, 0.999}) {
    const uint64_t q = spread.Quantile(p);
    EXPECT_GE(q, 1u) << p;
    EXPECT_LE(q, 1000u) << p;
  }
}

TEST(MetricsTest, SnapshotMergeFromAddsCountersAndMaxesGauges) {
  obs::MetricsSnapshot a;
  a.counters[static_cast<size_t>(obs::Counter::kVf2Calls)] = 3;
  a.gauges[static_cast<size_t>(obs::Gauge::kPoolThreads)] = 2;
  a.hists[static_cast<size_t>(obs::Hist::kPcpEdges)].Record(10);
  obs::MetricsSnapshot b;
  b.enabled = true;
  b.counters[static_cast<size_t>(obs::Counter::kVf2Calls)] = 4;
  b.gauges[static_cast<size_t>(obs::Gauge::kPoolThreads)] = 7;
  b.hists[static_cast<size_t>(obs::Hist::kPcpEdges)].Record(30);
  a.MergeFrom(b);
  EXPECT_TRUE(a.enabled);
  EXPECT_EQ(a.counter(obs::Counter::kVf2Calls), 7u);
  EXPECT_EQ(a.gauge(obs::Gauge::kPoolThreads), 7u);
  EXPECT_EQ(a.hist(obs::Hist::kPcpEdges).count, 2u);
  EXPECT_EQ(a.hist(obs::Hist::kPcpEdges).sum, 40u);
}

TEST(MetricsTest, HumanSummaryIncludesQuantiles) {
  obs::MetricsSnapshot snap;
  snap.enabled = true;
  obs::HistData& h = snap.hists[static_cast<size_t>(obs::Hist::kPcpEdges)];
  for (int i = 0; i < 50; ++i) h.Record(9);
  std::string text = obs::HumanSummary(snap);
  EXPECT_NE(text.find("p50=9"), std::string::npos) << text;
  EXPECT_NE(text.find("p95=9"), std::string::npos) << text;
  EXPECT_NE(text.find("p99=9"), std::string::npos) << text;
}

// ---------------------------------------------------------------------------
// Registry + scopes

TEST(MetricsTest, CountsNothingWithoutScope) {
  obs::MetricsRegistry registry;
  obs::Count(obs::Counter::kVf2Calls);  // no scope installed: dropped
  EXPECT_FALSE(obs::MetricsEnabled());
  EXPECT_EQ(registry.Snapshot().counter(obs::Counter::kVf2Calls), 0u);
}

TEST(MetricsTest, ScopeInstallsAndRestores) {
  if (!ObsCompiledIn()) GTEST_SKIP() << "built with CATAPULT_DISABLE_OBS";
  obs::MetricsRegistry registry;
  {
    obs::ScopedMetricsScope scope(&registry);
    EXPECT_TRUE(obs::MetricsEnabled());
    obs::Count(obs::Counter::kVf2Calls, 3);
    obs::SetGaugeMax(obs::Gauge::kPoolThreads, 7);
    obs::SetGaugeMax(obs::Gauge::kPoolThreads, 2);  // below the watermark
    obs::Observe(obs::Hist::kVf2NodesPerCall, 5);
  }
  EXPECT_FALSE(obs::MetricsEnabled());
  obs::MetricsSnapshot snap = registry.Snapshot();
  EXPECT_TRUE(snap.enabled);
  EXPECT_EQ(snap.counter(obs::Counter::kVf2Calls), 3u);
  EXPECT_EQ(snap.gauge(obs::Gauge::kPoolThreads), 7u);
  EXPECT_EQ(snap.hist(obs::Hist::kVf2NodesPerCall).count, 1u);
  EXPECT_EQ(snap.hist(obs::Hist::kVf2NodesPerCall).sum, 5u);
}

TEST(MetricsTest, NullRegistryScopeIsInert) {
  obs::ScopedMetricsScope scope(nullptr);
  EXPECT_FALSE(obs::MetricsEnabled());
  obs::Count(obs::Counter::kVf2Calls);  // must not crash
}

TEST(MetricsTest, ShardsMergeAcrossPoolThreads) {
  if (!ObsCompiledIn()) GTEST_SKIP() << "built with CATAPULT_DISABLE_OBS";
  obs::MetricsRegistry registry;
  ThreadPool pool(4);
  obs::ScopedMetricsScope scope(&registry);
  // 100 parallel items, each counting once and observing its index: the
  // merged totals must be exact regardless of which worker ran which item.
  pool.ParallelFor(
      100, 1,
      [](size_t i) {
        obs::Count(obs::Counter::kWalkSteps);
        obs::Observe(obs::Hist::kPcpEdges, i);
      },
      &registry);
  obs::MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.counter(obs::Counter::kWalkSteps), 100u);
  EXPECT_EQ(snap.hist(obs::Hist::kPcpEdges).count, 100u);
  EXPECT_EQ(snap.hist(obs::Hist::kPcpEdges).sum, 99u * 100u / 2);
  EXPECT_EQ(snap.hist(obs::Hist::kPcpEdges).min, 0u);
  EXPECT_EQ(snap.hist(obs::Hist::kPcpEdges).max, 99u);
}

TEST(MetricsTest, ResetClearsEverything) {
  obs::MetricsRegistry registry;
  {
    obs::ScopedMetricsScope scope(&registry);
    obs::Count(obs::Counter::kVf2Calls);
  }
  registry.Reset();
  EXPECT_EQ(registry.Snapshot().counter(obs::Counter::kVf2Calls), 0u);
}

TEST(MetricsTest, EveryNameIsNonEmptyAndUnique) {
  std::set<std::string> names;
  for (size_t i = 0; i < obs::kNumCounters; ++i) {
    names.insert(obs::CounterName(static_cast<obs::Counter>(i)));
  }
  for (size_t i = 0; i < obs::kNumGauges; ++i) {
    names.insert(obs::GaugeName(static_cast<obs::Gauge>(i)));
  }
  for (size_t i = 0; i < obs::kNumHists; ++i) {
    names.insert(obs::HistName(static_cast<obs::Hist>(i)));
  }
  EXPECT_EQ(names.size(),
            obs::kNumCounters + obs::kNumGauges + obs::kNumHists);
  EXPECT_EQ(names.count(""), 0u);
}

TEST(MetricsTest, HumanSummarySkipsZerosByDefault) {
  obs::MetricsSnapshot snap;
  snap.enabled = true;
  snap.counters[static_cast<size_t>(obs::Counter::kVf2Calls)] = 42;
  std::string text = obs::HumanSummary(snap);
  EXPECT_NE(text.find("vf2.calls"), std::string::npos);
  EXPECT_EQ(text.find("ged.bipartite_calls"), std::string::npos);
  std::string all = obs::HumanSummary(snap, /*include_zeros=*/true);
  EXPECT_NE(all.find("ged.bipartite_calls"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Clock + tracer

// Deterministic tick source: advances 1 microsecond per call.
uint64_t g_test_ticks = 0;
uint64_t TestTicks() { return g_test_ticks += 1000; }

TEST(ClockTest, ScopedTickSourceInstallsAndRestores) {
  g_test_ticks = 0;
  {
    obs::ScopedTickSourceForTest scoped(&TestTicks);
    EXPECT_EQ(obs::NowNanos(), 1000u);
    EXPECT_EQ(obs::NowNanos(), 2000u);
    EXPECT_EQ(obs::NowMicros(), 3u);
  }
  // Default source restored: monotonic real time again.
  uint64_t a = obs::NowNanos();
  uint64_t b = obs::NowNanos();
  EXPECT_GE(b, a);
}

TEST(ClockTest, WallTimerUsesInstalledSource) {
  g_test_ticks = 0;
  obs::ScopedTickSourceForTest scoped(&TestTicks);
  WallTimer timer;                             // tick 1: start = 1000
  EXPECT_DOUBLE_EQ(timer.ElapsedSeconds(), 1e-6);  // tick 2: 2000 - 1000
  EXPECT_DOUBLE_EQ(timer.ElapsedMillis(), 2e-3);   // tick 3
}

TEST(TracerTest, DeterministicSpanTree) {
  g_test_ticks = 0;
  obs::ScopedTickSourceForTest scoped(&TestTicks);
  obs::Tracer tracer;
  obs::MetricsRegistry registry;
  obs::ScopedMetricsScope scope(&registry);
  {
    obs::Span root(&tracer, "run");  // opens at 1000
    {
      obs::Span child(&tracer, "phase", root.id());  // opens at 2000
      obs::Count(obs::Counter::kVf2Calls, 5);
      // child closes at 3000: dur 1000, delta vf2.calls=5
    }
    obs::Count(obs::Counter::kVf2Calls, 2);
    // root closes at 4000: dur 3000, delta vf2.calls=7
  }
  EXPECT_EQ(tracer.event_count(), 2u);
  std::string json = tracer.ToJson();
  // Child emitted first (closed first); exact timestamps in microseconds.
  // The per-span counter deltas appear only when instrumentation is
  // compiled in.
  std::string child_args = "{\"span_id\":2,\"parent_id\":1";
  std::string root_args = "{\"span_id\":1,\"parent_id\":0";
  if (ObsCompiledIn()) {
    child_args += ",\"vf2.calls\":5";
    root_args += ",\"vf2.calls\":7";
  }
  EXPECT_NE(json.find("{\"name\":\"phase\",\"cat\":\"catapult\",\"ph\":\"X\","
                      "\"ts\":2,\"dur\":1,\"pid\":1,\"tid\":0,\"args\":" +
                      child_args + "}}"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("{\"name\":\"run\",\"cat\":\"catapult\",\"ph\":\"X\","
                      "\"ts\":1,\"dur\":3,\"pid\":1,\"tid\":0,\"args\":" +
                      root_args + "}}"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
}

TEST(TracerTest, InertSpanDoesNothing) {
  obs::Span span(nullptr, "nothing");
  EXPECT_FALSE(span.active());
  EXPECT_EQ(span.id(), 0u);
  span.Close();  // must not crash
}

TEST(TracerTest, CloseIsIdempotent) {
  obs::Tracer tracer;
  obs::Span span(&tracer, "once");
  span.Close();
  span.Close();
  EXPECT_EQ(tracer.event_count(), 1u);
}

// ---------------------------------------------------------------------------
// End-to-end: report schema and the no-effect-on-results contract

CatapultOptions FastOptions() {
  CatapultOptions options;
  options.selector.budget = {.eta_min = 3, .eta_max = 6, .gamma = 8};
  options.selector.walks_per_candidate = 10;
  options.clustering.max_cluster_size = 12;
  options.clustering.fine_mcs.node_budget = 3000;
  options.seed = 99;
  return options;
}

GraphDatabase SmallDb(uint64_t seed = 31, size_t n = 60) {
  MoleculeGeneratorOptions gen;
  gen.num_graphs = n;
  gen.min_vertices = 8;
  gen.max_vertices = 18;
  gen.seed = seed;
  return GenerateMoleculeDatabase(gen);
}

void ExpectIdenticalResults(const CatapultResult& a, const CatapultResult& b) {
  ASSERT_EQ(a.clusters.size(), b.clusters.size());
  for (size_t i = 0; i < a.clusters.size(); ++i) {
    EXPECT_EQ(a.clusters[i], b.clusters[i]) << "cluster " << i;
  }
  ASSERT_EQ(a.selection.patterns.size(), b.selection.patterns.size());
  for (size_t i = 0; i < a.selection.patterns.size(); ++i) {
    const SelectedPattern& pa = a.selection.patterns[i];
    const SelectedPattern& pb = b.selection.patterns[i];
    EXPECT_TRUE(StructurallyEqual(pa.graph, pb.graph)) << "pattern " << i;
    EXPECT_EQ(pa.score, pb.score) << "pattern " << i;
    EXPECT_EQ(pa.ccov, pb.ccov) << "pattern " << i;
    EXPECT_EQ(pa.lcov, pb.lcov) << "pattern " << i;
    EXPECT_EQ(pa.div, pb.div) << "pattern " << i;
  }
}

std::string ObsScratchDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "catapult_obs_" +
                    ::testing::UnitTest::GetInstance()
                        ->current_test_info()
                        ->name() +
                    "_" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

std::string FileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// The tentpole contract: attaching a registry and a tracer changes neither
// the patterns nor the checkpoint bytes, at 1 and at 4 threads.
TEST(ObsPipelineTest, ObservabilityDoesNotChangeResults) {
  GraphDatabase db = SmallDb();
  for (size_t threads : {size_t{1}, size_t{4}}) {
    SCOPED_TRACE(threads);
    CatapultOptions plain_options = FastOptions();
    plain_options.threads = threads;
    plain_options.checkpoint_dir = ObsScratchDir(
        "plain" + std::to_string(threads));
    CatapultResult plain = RunCatapult(db, plain_options);
    ASSERT_FALSE(plain.selection.patterns.empty());
    EXPECT_FALSE(plain.execution.metrics.enabled);

    CatapultOptions observed_options = FastOptions();
    observed_options.threads = threads;
    observed_options.checkpoint_dir = ObsScratchDir(
        "observed" + std::to_string(threads));
    obs::MetricsRegistry registry;
    obs::Tracer tracer;
    RunContext ctx =
        RunContext::NoLimit().WithObservability(&registry, &tracer);
    CatapultResult observed = RunCatapult(db, observed_options, ctx);

    ExpectIdenticalResults(plain, observed);
    for (const char* file :
         {"clustering.ckpt", "csgs.ckpt", "selection.ckpt"}) {
      std::string a = plain_options.checkpoint_dir + "/" + file;
      std::string b = observed_options.checkpoint_dir + "/" + file;
      ASSERT_TRUE(std::filesystem::exists(a)) << a;
      ASSERT_TRUE(std::filesystem::exists(b)) << b;
      EXPECT_EQ(FileBytes(a), FileBytes(b)) << file << " differs";
    }
    // And the instrumentation did observe the run (unless compiled out, in
    // which case only the zero-effect half of the contract applies).
    if (ObsCompiledIn()) {
      obs::MetricsSnapshot snap = observed.execution.metrics;
      EXPECT_TRUE(snap.enabled);
      EXPECT_GT(snap.counter(obs::Counter::kVf2Calls), 0u);
      EXPECT_GT(snap.counter(obs::Counter::kWalkSteps), 0u);
      EXPECT_GT(snap.counter(obs::Counter::kCsgFolds), 0u);
      EXPECT_GT(snap.counter(obs::Counter::kCheckpointRecordsWritten), 0u);
      EXPECT_EQ(snap.gauge(obs::Gauge::kPoolThreads), threads);
      EXPECT_GT(tracer.event_count(), 0u);
    }

    std::filesystem::remove_all(plain_options.checkpoint_dir);
    std::filesystem::remove_all(observed_options.checkpoint_dir);
  }
}

// Counter totals are thread-count independent: the work performed is
// deterministic, and the shard merge is commutative.
TEST(ObsPipelineTest, CounterTotalsAreThreadCountInvariant) {
  GraphDatabase db = SmallDb();
  obs::MetricsSnapshot snaps[2];
  size_t idx = 0;
  for (size_t threads : {size_t{1}, size_t{4}}) {
    CatapultOptions options = FastOptions();
    options.threads = threads;
    obs::MetricsRegistry registry;
    RunContext ctx =
        RunContext::NoLimit().WithObservability(&registry, nullptr);
    snaps[idx++] = RunCatapult(db, options, ctx).execution.metrics;
  }
  EXPECT_EQ(snaps[0].counters, snaps[1].counters);
  for (size_t h = 0; h < obs::kNumHists; ++h) {
    SCOPED_TRACE(obs::HistName(static_cast<obs::Hist>(h)));
    EXPECT_EQ(snaps[0].hists[h].count, snaps[1].hists[h].count);
    EXPECT_EQ(snaps[0].hists[h].sum, snaps[1].hists[h].sum);
    EXPECT_EQ(snaps[0].hists[h].buckets, snaps[1].hists[h].buckets);
  }
}

// Minimal structural JSON validation: balanced containers outside strings,
// correct escaping inside them. Catches the classes of breakage a schema
// change could introduce without pulling in a parser.
void ExpectStructurallyValidJson(const std::string& json) {
  std::vector<char> stack;
  bool in_string = false;
  bool escaped = false;
  for (char c : json) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      } else {
        ASSERT_GE(static_cast<unsigned char>(c), 0x20)
            << "raw control character inside string";
      }
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{': case '[': stack.push_back(c); break;
      case '}':
        ASSERT_FALSE(stack.empty());
        ASSERT_EQ(stack.back(), '{');
        stack.pop_back();
        break;
      case ']':
        ASSERT_FALSE(stack.empty());
        ASSERT_EQ(stack.back(), '[');
        stack.pop_back();
        break;
      default: break;
    }
  }
  EXPECT_FALSE(in_string);
  EXPECT_TRUE(stack.empty());
}

// Golden schema test: every documented key of the selection report is
// present, including the new metrics section with every counter name.
TEST(ObsPipelineTest, SelectionReportSchemaIncludesMetrics) {
  GraphDatabase db = SmallDb();
  CatapultOptions options = FastOptions();
  obs::MetricsRegistry registry;
  RunContext ctx =
      RunContext::NoLimit().WithObservability(&registry, nullptr);
  CatapultResult result = RunCatapult(db, options, ctx);
  ASSERT_FALSE(result.selection.patterns.empty());
  std::string json = SelectionReportJson(result, db.labels());
  ExpectStructurallyValidJson(json);
  for (const char* key :
       {"\"database\"", "\"graphs\"", "\"clusters\"", "\"timings\"",
        "\"clustering_s\"", "\"csg_s\"", "\"selection_s\"", "\"metrics\"",
        "\"enabled\": true", "\"counters\"", "\"gauges\"", "\"histograms\"",
        "\"patterns\"", "\"id\"", "\"score\"", "\"ccov\"", "\"lcov\"",
        "\"div\"", "\"cog\"", "\"vertices\"", "\"label\"", "\"edges\"",
        "\"u\"", "\"v\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << "missing " << key;
  }
  // Every metric name is present even when its value is zero.
  for (size_t i = 0; i < obs::kNumCounters; ++i) {
    std::string quoted =
        std::string("\"") + obs::CounterName(static_cast<obs::Counter>(i)) +
        "\"";
    EXPECT_NE(json.find(quoted), std::string::npos) << "missing " << quoted;
  }
}

TEST(ObsPipelineTest, ReportWithoutRegistryHasDisabledMetrics) {
  CatapultResult empty;
  LabelMap labels;
  std::string json = SelectionReportJson(empty, labels);
  ExpectStructurallyValidJson(json);
  EXPECT_NE(json.find("\"enabled\": false"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Prometheus text exposition (DESIGN.md §16)

TEST(PrometheusExportTest, NameMapping) {
  EXPECT_EQ(obs::PrometheusName("vf2.calls"), "catapult_vf2_calls");
  EXPECT_EQ(obs::PrometheusName("serve.queue_wait_millis"),
            "catapult_serve_queue_wait_millis");
}

TEST(PrometheusExportTest, RendersEveryMetricDeterministically) {
  obs::MetricsSnapshot snap;
  snap.counters[static_cast<size_t>(obs::Counter::kVf2Calls)] = 3;
  snap.gauges[static_cast<size_t>(obs::Gauge::kPoolThreads)] = 4;
  obs::HistData& h =
      snap.hists[static_cast<size_t>(obs::Hist::kPcpEdges)];
  h.Record(0);
  h.Record(1);
  h.Record(5);  // bucket 3 (values 4..7)
  const std::string text = obs::RenderPrometheusText(snap);
  EXPECT_NE(text.find("# TYPE catapult_vf2_calls counter\n"
                      "catapult_vf2_calls 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE catapult_pool_threads gauge\n"
                      "catapult_pool_threads 4\n"),
            std::string::npos);
  // Cumulative buckets: le edges 0, 1, 3, 7; +Inf always equals count.
  const std::string hist_name = obs::PrometheusName(
      obs::HistName(obs::Hist::kPcpEdges));
  EXPECT_NE(text.find("# TYPE " + hist_name + " histogram"),
            std::string::npos);
  EXPECT_NE(text.find(hist_name + "_bucket{le=\"0\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find(hist_name + "_bucket{le=\"1\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find(hist_name + "_bucket{le=\"3\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find(hist_name + "_bucket{le=\"7\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find(hist_name + "_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find(hist_name + "_sum 6\n"), std::string::npos);
  EXPECT_NE(text.find(hist_name + "_count 3\n"), std::string::npos);
  // Trailing all-zero buckets are trimmed: no le edge past 7.
  EXPECT_EQ(text.find(hist_name + "_bucket{le=\"15\"}"), std::string::npos);
  // Every metric appears, and equal snapshots render byte-identically.
  for (size_t i = 0; i < obs::kNumCounters; ++i) {
    const std::string name =
        obs::PrometheusName(obs::CounterName(static_cast<obs::Counter>(i)));
    EXPECT_NE(text.find("# TYPE " + name + " counter\n"), std::string::npos)
        << name;
  }
  EXPECT_EQ(text, obs::RenderPrometheusText(snap));
}

// ---------------------------------------------------------------------------
// Admin endpoint + request log

#if defined(__unix__) || defined(__APPLE__)

// One admin exchange over a raw AF_UNIX socket: send `request`, read to EOF.
std::string AdminExchange(const std::string& socket_path,
                          const std::string& request) {
  sockaddr_un addr{};
  if (socket_path.size() >= sizeof(addr.sun_path)) return "";
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return "";
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  (void)!::write(fd, request.data(), request.size());
  std::string reply;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n <= 0) break;
    reply.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return reply;
}

TEST(AdminServerTest, ServesHandlerPathsAndBuiltinHealthz) {
  const std::string dir = ObsScratchDir("admin");
  const std::string path = dir + "/admin.sock";
  obs::AdminServer admin;
  std::string err = admin.Start("unix:" + path, [](const std::string& p) {
    obs::AdminResponse r;
    if (p == "/metrics") {
      r.body = "catapult_up 1\n";
      return r;
    }
    r.status = 404;
    r.body = "not found\n";
    return r;
  });
  ASSERT_EQ(err, "");
  ASSERT_TRUE(admin.started());

  // Bare-path form.
  std::string metrics = AdminExchange(path, "/metrics\n");
  EXPECT_NE(metrics.find("200"), std::string::npos) << metrics;
  EXPECT_NE(metrics.find("catapult_up 1\n"), std::string::npos) << metrics;
  EXPECT_NE(metrics.find("Content-Length:"), std::string::npos) << metrics;

  // HTTP request-line form (what curl sends).
  std::string curl = AdminExchange(
      path, "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_NE(curl.find("catapult_up 1\n"), std::string::npos) << curl;

  // /healthz is answered built-in, without consulting the handler.
  std::string health = AdminExchange(path, "/healthz\n");
  EXPECT_NE(health.find("ok\n"), std::string::npos) << health;

  // Unknown paths surface the handler's 404.
  std::string missing = AdminExchange(path, "/nope\n");
  EXPECT_NE(missing.find("404"), std::string::npos) << missing;

  EXPECT_GE(admin.requests_served(), 4u);
  admin.Stop();
  EXPECT_FALSE(admin.started());
  std::filesystem::remove_all(dir);
}

TEST(AdminServerTest, RejectsUnbindableAddress) {
  obs::AdminServer admin;
  EXPECT_NE(admin.Start("bogus:address", [](const std::string&) {
    return obs::AdminResponse{};
  }),
            "");
  EXPECT_FALSE(admin.started());
}

#endif  // __unix__ || __APPLE__

TEST(RequestLogTest, WritesOneJsonLinePerEvent) {
  const std::string dir = ObsScratchDir("reqlog");
  const std::string path = dir + "/requests.jsonl";
  obs::RequestLog log;
  ASSERT_EQ(log.Start(path), "");

  obs::RequestLogEvent ok;
  ok.request_id = 1;
  ok.budget_key = "3-8x12";
  ok.outcome = "ok";
  ok.queue_wait_ms = 1.5;
  ok.run_ms = 20.0;
  ok.panel_patterns = 12;
  ok.panel_bytes = 4096;
  ok.worker = 0;
  EXPECT_TRUE(log.Record(ok));

  obs::RequestLogEvent shed;
  shed.request_id = 2;
  shed.budget_key = "3-8x12";
  shed.outcome = "shed";
  shed.detail = "queue_full";
  shed.trace_id = 0xabcd;
  shed.parent_span_id = 7;
  EXPECT_TRUE(log.Record(shed));
  log.Stop();

  std::string contents = FileBytes(path);
  ASSERT_FALSE(contents.empty());
  EXPECT_NE(contents.find("\"request_id\":1"), std::string::npos) << contents;
  EXPECT_NE(contents.find("\"budget\":\"3-8x12\""), std::string::npos);
  EXPECT_NE(contents.find("\"outcome\":\"ok\""), std::string::npos);
  EXPECT_NE(contents.find("\"outcome\":\"shed\""), std::string::npos);
  EXPECT_NE(contents.find("\"detail\":\"queue_full\""), std::string::npos);
  EXPECT_NE(contents.find("\"trace_id\":43981"), std::string::npos);
  // Untraced events omit the trace keys entirely.
  const size_t first_line_end = contents.find('\n');
  ASSERT_NE(first_line_end, std::string::npos);
  EXPECT_EQ(contents.substr(0, first_line_end).find("trace_id"),
            std::string::npos);
  // One JSON object per line, structurally valid.
  size_t lines = 0;
  std::istringstream in(contents);
  for (std::string line; std::getline(in, line);) {
    ++lines;
    ExpectStructurallyValidJson(line);
  }
  EXPECT_EQ(lines, 2u);
  std::filesystem::remove_all(dir);
}

TEST(RequestLogTest, DropsWhenNotStarted) {
  obs::RequestLog log;
  obs::RequestLogEvent ev;
  EXPECT_FALSE(log.Record(ev));
  EXPECT_FALSE(log.started());
}

// ---------------------------------------------------------------------------
// Cross-process span shipping (DESIGN.md §16)

TEST(TracerTest, DrainSpansNormalizesTimestampsToBatchStart) {
  g_test_ticks = 1000000;  // a worker whose clock did not start at zero
  obs::ScopedTickSourceForTest scoped(&TestTicks);
  obs::Tracer tracer;
  {
    obs::Span root(&tracer, "cluster-0");
    obs::Span child(&tracer, "fold", root.id());
  }
  std::vector<obs::SpanRecord> spans = tracer.DrainSpans();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(tracer.event_count(), 0u);  // drained
  uint64_t min_start = UINT64_MAX;
  for (const obs::SpanRecord& s : spans) {
    min_start = std::min(min_start, s.start_ns);
  }
  EXPECT_EQ(min_start, 0u);  // wall-clock independent
  // Parent links survive the trip: "fold" still points at "cluster-0".
  const obs::SpanRecord& fold = spans[0].name == "fold" ? spans[0] : spans[1];
  const obs::SpanRecord& cluster =
      spans[0].name == "fold" ? spans[1] : spans[0];
  EXPECT_EQ(fold.parent_id, cluster.span_id);
}

// The supervisor-side merge: imported batches land on their own process
// track, parent-linked under the supervisor span, deterministically.
TEST(TracerTest, ImportShardSpansIsDeterministicAndReparents) {
  // A worker batch produced under a deterministic clock.
  g_test_ticks = 0;
  std::vector<obs::SpanRecord> batch;
  {
    obs::ScopedTickSourceForTest scoped(&TestTicks);
    obs::Tracer worker;
    {
      obs::Span root(&worker, "cluster-0");
      obs::Span child(&worker, "fold", root.id());
    }
    batch = worker.DrainSpans();
  }
  ASSERT_EQ(batch.size(), 2u);

  auto merge = [&batch]() {
    g_test_ticks = 0;
    obs::ScopedTickSourceForTest scoped(&TestTicks);
    obs::Tracer super;
    super.SetTraceId(0x1234);
    super.SetProcessName(2, "catapult shard 0");
    obs::Span shard(&super, "dist.shard-0");
    const size_t merged =
        super.ImportShardSpans(batch, 2, shard.id(), "worker.shard-0", 0);
    EXPECT_EQ(merged, 2u);
    shard.Close();
    return super.ToJson();
  };
  const std::string a = merge();
  const std::string b = merge();
  EXPECT_EQ(a, b);  // byte-stable across reruns under fixed ticks
  EXPECT_NE(a.find("\"traceId\""), std::string::npos) << a;
  EXPECT_NE(a.find("process_name"), std::string::npos) << a;
  EXPECT_NE(a.find("catapult shard 0"), std::string::npos) << a;
  EXPECT_NE(a.find("\"worker.shard-0\""), std::string::npos) << a;
  EXPECT_NE(a.find("\"pid\":2"), std::string::npos) << a;
  // The supervisor's own span stays on the host process track.
  EXPECT_NE(a.find("\"pid\":1"), std::string::npos) << a;
}

}  // namespace
}  // namespace catapult
