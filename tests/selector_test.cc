// Unit tests of FindCannedPatternSet (Algorithm 4) on small controlled
// inputs, including the strategy and weight-decay options.

#include "src/core/selector.h"

#include <gtest/gtest.h>

#include "src/csg/csg.h"
#include "src/data/molecule_generator.h"
#include "src/graph/algorithms.h"
#include "src/iso/vf2.h"

namespace catapult {
namespace {

struct SelectorEnv {
  GraphDatabase db;
  std::vector<std::vector<GraphId>> clusters;
  std::vector<ClusterSummaryGraph> csgs;
};

SelectorEnv MakeSetup(size_t num_graphs = 60, uint64_t seed = 13) {
  SelectorEnv setup;
  MoleculeGeneratorOptions gen;
  gen.num_graphs = num_graphs;
  gen.min_vertices = 8;
  gen.max_vertices = 16;
  gen.scaffold_families = 4;
  gen.seed = seed;
  setup.db = GenerateMoleculeDatabase(gen);
  // Simple contiguous clusters of 10.
  for (GraphId start = 0; start < setup.db.size(); start += 10) {
    std::vector<GraphId> cluster;
    for (GraphId i = start; i < std::min<GraphId>(start + 10, setup.db.size());
         ++i) {
      cluster.push_back(i);
    }
    setup.clusters.push_back(std::move(cluster));
  }
  setup.csgs = BuildCsgs(setup.db, setup.clusters);
  return setup;
}

TEST(SelectorTest, RespectsGamma) {
  SelectorEnv setup = MakeSetup();
  SelectorOptions options;
  options.budget = {.eta_min = 3, .eta_max = 5, .gamma = 6};
  options.walks_per_candidate = 8;
  Rng rng(1);
  SelectionResult result = FindCannedPatternSet(
      setup.db, setup.clusters, setup.csgs, options, rng);
  EXPECT_LE(result.patterns.size(), 6u);
  EXPECT_GE(result.patterns.size(), 1u);
}

TEST(SelectorTest, PatternsConnectedAndInSizeWindow) {
  SelectorEnv setup = MakeSetup();
  SelectorOptions options;
  options.budget = {.eta_min = 3, .eta_max = 6, .gamma = 8};
  options.walks_per_candidate = 8;
  Rng rng(2);
  SelectionResult result = FindCannedPatternSet(
      setup.db, setup.clusters, setup.csgs, options, rng);
  for (const SelectedPattern& p : result.patterns) {
    EXPECT_TRUE(IsConnected(p.graph));
    EXPECT_GE(p.graph.NumEdges(), 3u);
    EXPECT_LE(p.graph.NumEdges(), 6u);
    EXPECT_GT(p.cog, 0.0);
    EXPECT_GE(p.ccov, 0.0);
    EXPECT_LE(p.lcov, 1.0);
  }
}

TEST(SelectorTest, EmptyCsgListYieldsNothing) {
  SelectorEnv setup = MakeSetup();
  SelectorOptions options;
  Rng rng(3);
  SelectionResult result =
      FindCannedPatternSet(setup.db, {}, {}, options, rng);
  EXPECT_TRUE(result.patterns.empty());
}

TEST(SelectorTest, GreedyBfsStrategyProducesPatterns) {
  SelectorEnv setup = MakeSetup();
  SelectorOptions options;
  options.budget = {.eta_min = 3, .eta_max = 5, .gamma = 5};
  options.strategy = CandidateStrategy::kGreedyBfs;
  Rng rng(4);
  SelectionResult result = FindCannedPatternSet(
      setup.db, setup.clusters, setup.csgs, options, rng);
  EXPECT_GE(result.patterns.size(), 1u);
}

TEST(SelectorTest, NoDecayStillTerminates) {
  SelectorEnv setup = MakeSetup();
  SelectorOptions options;
  options.budget = {.eta_min = 3, .eta_max = 5, .gamma = 6};
  options.weight_decay = 1.0;
  options.walks_per_candidate = 8;
  Rng rng(5);
  SelectionResult result = FindCannedPatternSet(
      setup.db, setup.clusters, setup.csgs, options, rng);
  EXPECT_LE(result.patterns.size(), 6u);
}

TEST(SelectorTest, SourceCsgIsValid) {
  SelectorEnv setup = MakeSetup();
  SelectorOptions options;
  options.budget = {.eta_min = 3, .eta_max = 5, .gamma = 4};
  options.walks_per_candidate = 8;
  Rng rng(6);
  SelectionResult result = FindCannedPatternSet(
      setup.db, setup.clusters, setup.csgs, options, rng);
  for (const SelectedPattern& p : result.patterns) {
    ASSERT_LT(p.source_csg, setup.csgs.size());
    // The proposing CSG must contain the pattern.
    Graph summary = setup.csgs[p.source_csg].ToGraph();
    EXPECT_TRUE(ContainsSubgraph(p.graph, summary));
  }
}

TEST(SelectorTest, PatternGraphsViewMatches) {
  SelectorEnv setup = MakeSetup();
  SelectorOptions options;
  options.budget = {.eta_min = 3, .eta_max = 5, .gamma = 4};
  options.walks_per_candidate = 8;
  Rng rng(7);
  SelectionResult result = FindCannedPatternSet(
      setup.db, setup.clusters, setup.csgs, options, rng);
  std::vector<Graph> view = result.PatternGraphs();
  ASSERT_EQ(view.size(), result.patterns.size());
  for (size_t i = 0; i < view.size(); ++i) {
    EXPECT_TRUE(StructurallyEqual(view[i], result.patterns[i].graph));
  }
}

// Parameterized sweep over budgets: the per-size uniform cap of
// Definition 3.1 must hold for any budget shape.
struct BudgetCase {
  size_t eta_min;
  size_t eta_max;
  size_t gamma;
};

class SelectorBudgetSweep : public ::testing::TestWithParam<BudgetCase> {};

TEST_P(SelectorBudgetSweep, UniformSizeDistributionHolds) {
  BudgetCase param = GetParam();
  SelectorEnv setup = MakeSetup();
  SelectorOptions options;
  options.budget = {.eta_min = param.eta_min,
                    .eta_max = param.eta_max,
                    .gamma = param.gamma};
  options.walks_per_candidate = 6;
  Rng rng(8);
  SelectionResult result = FindCannedPatternSet(
      setup.db, setup.clusters, setup.csgs, options, rng);
  EXPECT_LE(result.patterns.size(), param.gamma);
  std::map<size_t, size_t> per_size;
  for (const SelectedPattern& p : result.patterns) {
    EXPECT_GE(p.graph.NumEdges(), param.eta_min);
    EXPECT_LE(p.graph.NumEdges(), param.eta_max);
    ++per_size[p.graph.NumEdges()];
  }
  for (const auto& [size, count] : per_size) {
    EXPECT_LE(count, options.budget.MaxPerSize() + 1)
        << "size " << size << " overfilled";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Budgets, SelectorBudgetSweep,
    ::testing::Values(BudgetCase{3, 5, 3}, BudgetCase{3, 6, 8},
                      BudgetCase{4, 7, 4}, BudgetCase{3, 3, 2},
                      BudgetCase{3, 8, 12}));

}  // namespace
}  // namespace catapult
