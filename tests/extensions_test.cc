// Tests for the post-paper extensions: agglomerative coarse clustering,
// the sequential relabelling cost model, and the JSON selection report.

#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "src/cluster/agglomerative.h"
#include "src/cluster/pipeline.h"
#include "src/core/catapult.h"
#include "src/core/report.h"
#include "src/data/molecule_generator.h"
#include "src/formulate/evaluate.h"
#include "src/formulate/steps.h"

namespace catapult {
namespace {

DynamicBitset Bits(size_t n, std::initializer_list<size_t> set) {
  DynamicBitset b(n);
  for (size_t i : set) b.Set(i);
  return b;
}

TEST(AgglomerativeTest, SeparatesObviousClusters) {
  std::vector<DynamicBitset> points;
  for (int i = 0; i < 4; ++i) points.push_back(Bits(6, {0, 1, 2}));
  for (int i = 0; i < 4; ++i) points.push_back(Bits(6, {3, 4, 5}));
  AgglomerativeOptions options;
  options.target_clusters = 2;
  AgglomerativeResult result = AgglomerativeCluster(points, options);
  EXPECT_EQ(result.num_clusters, 2u);
  for (int i = 1; i < 4; ++i) {
    EXPECT_EQ(result.assignment[static_cast<size_t>(i)],
              result.assignment[0]);
  }
  for (int i = 5; i < 8; ++i) {
    EXPECT_EQ(result.assignment[static_cast<size_t>(i)],
              result.assignment[4]);
  }
  EXPECT_NE(result.assignment[0], result.assignment[4]);
}

TEST(AgglomerativeTest, Deterministic) {
  std::vector<DynamicBitset> points;
  Rng rng(1);
  for (int i = 0; i < 20; ++i) {
    DynamicBitset b(8);
    for (size_t d = 0; d < 8; ++d) {
      if (rng.Bernoulli(0.5)) b.Set(d);
    }
    points.push_back(std::move(b));
  }
  AgglomerativeOptions options;
  options.target_clusters = 4;
  EXPECT_EQ(AgglomerativeCluster(points, options).assignment,
            AgglomerativeCluster(points, options).assignment);
}

TEST(AgglomerativeTest, DistanceCutoffStopsEarly) {
  std::vector<DynamicBitset> points = {Bits(4, {0}), Bits(4, {1}),
                                       Bits(4, {2}), Bits(4, {3})};
  AgglomerativeOptions options;
  options.target_clusters = 1;
  options.max_merge_distance = 0.5;  // all pairwise distances are 2
  AgglomerativeResult result = AgglomerativeCluster(points, options);
  EXPECT_EQ(result.num_clusters, 4u);
}

TEST(AgglomerativeTest, EmptyInput) {
  AgglomerativeOptions options;
  AgglomerativeResult result = AgglomerativeCluster({}, options);
  EXPECT_EQ(result.num_clusters, 0u);
  EXPECT_TRUE(result.assignment.empty());
}

TEST(AgglomerativePipelineTest, CoarsePhaseRunsWithAgglomerative) {
  MoleculeGeneratorOptions gen;
  gen.num_graphs = 40;
  gen.seed = 15;
  GraphDatabase db = GenerateMoleculeDatabase(gen);
  SmallGraphClusteringOptions options;
  options.coarse_algorithm = CoarseAlgorithm::kAgglomerative;
  options.mode = ClusteringMode::kCoarseOnly;
  options.max_cluster_size = 10;
  Rng rng(2);
  ClusteringResult result = SmallGraphClustering(db, options, rng);
  size_t total = 0;
  std::set<GraphId> seen;
  for (const auto& c : result.clusters) {
    total += c.size();
    for (GraphId id : c) EXPECT_TRUE(seen.insert(id).second);
  }
  EXPECT_EQ(total, 40u);
}

Graph Ring(size_t n, Label label) {
  Graph g;
  for (size_t i = 0; i < n; ++i) g.AddVertex(label);
  for (size_t i = 0; i < n; ++i) {
    g.AddEdge(static_cast<VertexId>(i), static_cast<VertexId>((i + 1) % n));
  }
  return g;
}

TEST(RelabelModelTest, SequentialMatchesOneStepForUniformLabels) {
  // All query labels equal: after the first 2-step selection, every click
  // is 1 step -> sequential = one-step + 1.
  Graph query = Ring(5, 3);
  std::vector<Graph> patterns = {Ring(5, 0)};
  Graph relabelled = query;
  for (VertexId v = 0; v < relabelled.NumVertices(); ++v) {
    relabelled.SetVertexLabel(v, 0);
  }
  QueryCover cover = MaxPatternCover(relabelled, patterns);
  ASSERT_EQ(cover.uses.size(), 1u);
  size_t one_step = StepsWithPatterns(query, patterns, cover, true,
                                      RelabelCostModel::kOneStep);
  size_t sequential = StepsWithPatterns(query, patterns, cover, true,
                                        RelabelCostModel::kSequential);
  EXPECT_EQ(sequential, one_step + 1);
}

TEST(RelabelModelTest, SequentialChargesLabelSwitches) {
  // Query with alternating labels: every placed vertex needs a new
  // selection -> 2 steps each.
  Graph query;
  query.AddVertex(1);
  query.AddVertex(2);
  query.AddVertex(1);
  query.AddVertex(2);
  query.AddEdge(0, 1);
  query.AddEdge(1, 2);
  query.AddEdge(2, 3);
  std::vector<Graph> patterns;
  Graph chain;  // unlabelled 4-chain
  for (int i = 0; i < 4; ++i) chain.AddVertex(0);
  chain.AddEdge(0, 1);
  chain.AddEdge(1, 2);
  chain.AddEdge(2, 3);
  patterns.push_back(chain);
  Graph relabelled = query;
  for (VertexId v = 0; v < relabelled.NumVertices(); ++v) {
    relabelled.SetVertexLabel(v, 0);
  }
  QueryCover cover = MaxPatternCover(relabelled, patterns);
  ASSERT_EQ(cover.uses.size(), 1u);
  // 1 placement + 4 vertices x 2 steps = 9.
  EXPECT_EQ(StepsWithPatterns(query, patterns, cover, true,
                              RelabelCostModel::kSequential),
            9u);
  // Optimistic model: 1 + 4 = 5.
  EXPECT_EQ(StepsWithPatterns(query, patterns, cover, true,
                              RelabelCostModel::kOneStep),
            5u);
}

TEST(ReportTest, JsonContainsPatternsAndTimings) {
  MoleculeGeneratorOptions gen;
  gen.num_graphs = 30;
  gen.seed = 16;
  GraphDatabase db = GenerateMoleculeDatabase(gen);
  CatapultOptions options;
  options.selector.budget = {.eta_min = 3, .eta_max = 5, .gamma = 4};
  options.selector.walks_per_candidate = 8;
  options.clustering.fine_mcs.node_budget = 3000;
  options.seed = 3;
  CatapultResult result = RunCatapult(db, options);
  std::string json = SelectionReportJson(result, db.labels());
  EXPECT_NE(json.find("\"patterns\""), std::string::npos);
  EXPECT_NE(json.find("\"timings\""), std::string::npos);
  EXPECT_NE(json.find("\"score\""), std::string::npos);
  EXPECT_NE(json.find("\"label\": \"C\""), std::string::npos);
  // Balanced braces/brackets (cheap structural sanity check).
  long braces = 0;
  long brackets = 0;
  for (char c : json) {
    if (c == '{') ++braces;
    if (c == '}') --braces;
    if (c == '[') ++brackets;
    if (c == ']') --brackets;
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

TEST(ReportTest, EscapesSpecialCharacters) {
  CatapultResult empty;
  LabelMap labels;
  labels.Intern("C\"N");  // pathological label name
  std::string json = SelectionReportJson(empty, labels);
  EXPECT_NE(json.find("\"patterns\": [\n  ]"), std::string::npos);
}

}  // namespace
}  // namespace catapult
