#include "src/search/search_engine.h"

#include <gtest/gtest.h>

#include "src/data/molecule_generator.h"
#include "src/data/query_generator.h"
#include "src/graph/algorithms.h"

namespace catapult {
namespace {

GraphDatabase SmallDb(size_t n = 60, uint64_t seed = 9) {
  MoleculeGeneratorOptions gen;
  gen.num_graphs = n;
  gen.min_vertices = 8;
  gen.max_vertices = 18;
  gen.seed = seed;
  return GenerateMoleculeDatabase(gen);
}

// Brute-force reference.
std::vector<GraphId> BruteForce(const GraphDatabase& db, const Graph& q) {
  std::vector<GraphId> out;
  for (GraphId i = 0; i < db.size(); ++i) {
    if (ContainsSubgraph(q, db.graph(i))) out.push_back(i);
  }
  return out;
}

TEST(SearchEngineTest, MatchesBruteForce) {
  GraphDatabase db = SmallDb();
  SubgraphSearchEngine engine(db);
  QueryWorkloadOptions wl;
  wl.count = 25;
  wl.min_edges = 2;
  wl.max_edges = 8;
  wl.seed = 3;
  for (const Graph& q : GenerateQueryWorkload(db, wl)) {
    EXPECT_EQ(engine.Search(q), BruteForce(db, q));
  }
}

TEST(SearchEngineTest, FilterIsSound) {
  GraphDatabase db = SmallDb();
  SubgraphSearchEngine engine(db);
  QueryWorkloadOptions wl;
  wl.count = 15;
  wl.min_edges = 3;
  wl.max_edges = 10;
  wl.seed = 4;
  for (const Graph& q : GenerateQueryWorkload(db, wl)) {
    DynamicBitset candidates = engine.FilterCandidates(q);
    for (GraphId id : BruteForce(db, q)) {
      EXPECT_TRUE(candidates.Test(id))
          << "filter dropped a true match for " << q.DebugString();
    }
  }
}

TEST(SearchEngineTest, FilterPrunes) {
  GraphDatabase db = SmallDb(120, 10);
  SubgraphSearchEngine engine(db);
  // A query with a rare label pair should prune aggressively.
  Rng rng(5);
  Graph q = RandomConnectedSubgraph(db.graph(0), 8, rng);
  DynamicBitset candidates = engine.FilterCandidates(q);
  EXPECT_LT(candidates.Count(), db.size());
}

TEST(SearchEngineTest, UnknownLabelMeansNoMatches) {
  GraphDatabase db = SmallDb();
  SubgraphSearchEngine engine(db);
  Graph q;
  q.AddVertex(9999);
  q.AddVertex(9999);
  q.AddEdge(0, 1);
  EXPECT_TRUE(engine.Search(q).empty());
  EXPECT_TRUE(engine.FilterCandidates(q).None());
}

TEST(SearchEngineTest, CountWithCap) {
  GraphDatabase db = SmallDb();
  SubgraphSearchEngine engine(db);
  Label c = db.labels().Find("C");
  Graph edge;
  edge.AddVertex(c);
  edge.AddVertex(c);
  edge.AddEdge(0, 1);
  size_t all = engine.CountMatches(edge);
  EXPECT_GT(all, 10u);
  EXPECT_EQ(engine.CountMatches(edge, 5), 5u);
}

TEST(SearchEngineTest, ExactCoverageMatchesEvaluateOnFullScan) {
  GraphDatabase db = SmallDb(40, 11);
  SubgraphSearchEngine engine(db);
  Rng rng(6);
  std::vector<Graph> patterns = {
      RandomConnectedSubgraph(db.graph(0), 4, rng),
      RandomConnectedSubgraph(db.graph(5), 5, rng),
  };
  double exact = ExactSubgraphCoverage(engine, patterns);
  // Reference: union of brute-force result sets.
  std::set<GraphId> covered;
  for (const Graph& p : patterns) {
    for (GraphId id : BruteForce(db, p)) covered.insert(id);
  }
  EXPECT_DOUBLE_EQ(exact, static_cast<double>(covered.size()) /
                              static_cast<double>(db.size()));
}

TEST(SearchEngineTest, EmptyDatabase) {
  GraphDatabase db;
  SubgraphSearchEngine engine(db);
  Graph q;
  q.AddVertex(0);
  EXPECT_TRUE(engine.Search(q).empty());
  EXPECT_DOUBLE_EQ(ExactSubgraphCoverage(engine, {q}), 0.0);
}

}  // namespace
}  // namespace catapult
