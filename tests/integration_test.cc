// End-to-end tests of the Catapult pipeline (Algorithm 1) and the selector
// (Algorithm 4) on small synthetic databases: cheap enough for CI, large
// enough to exercise every phase.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "src/core/catapult.h"
#include "src/data/molecule_generator.h"
#include "src/data/query_generator.h"
#include "src/formulate/evaluate.h"
#include "src/graph/algorithms.h"
#include "src/iso/vf2.h"
#include "src/util/failpoint.h"

namespace catapult {
namespace {

CatapultOptions FastOptions() {
  CatapultOptions options;
  options.selector.budget = {.eta_min = 3, .eta_max = 6, .gamma = 8};
  options.selector.walks_per_candidate = 10;
  options.clustering.max_cluster_size = 12;
  options.clustering.fine_mcs.node_budget = 3000;
  options.seed = 99;
  return options;
}

GraphDatabase SmallDb(uint64_t seed = 31, size_t n = 80) {
  MoleculeGeneratorOptions gen;
  gen.num_graphs = n;
  gen.min_vertices = 8;
  gen.max_vertices = 18;
  gen.seed = seed;
  return GenerateMoleculeDatabase(gen);
}

TEST(CatapultIntegrationTest, ProducesPatternsWithinBudget) {
  GraphDatabase db = SmallDb();
  CatapultOptions options = FastOptions();
  CatapultResult result = RunCatapult(db, options);
  EXPECT_FALSE(result.selection.patterns.empty());
  EXPECT_LE(result.selection.patterns.size(), options.selector.budget.gamma);
  std::map<size_t, size_t> per_size;
  for (const SelectedPattern& p : result.selection.patterns) {
    EXPECT_GE(p.graph.NumEdges(), options.selector.budget.eta_min);
    EXPECT_LE(p.graph.NumEdges(), options.selector.budget.eta_max);
    EXPECT_TRUE(IsConnected(p.graph));
    ++per_size[p.graph.NumEdges()];
  }
  // Uniform size distribution: per-size counts within cap (+ remainder).
  for (const auto& [size, count] : per_size) {
    EXPECT_LE(count, options.selector.budget.MaxPerSize() + 1);
  }
}

TEST(CatapultIntegrationTest, PatternsAreDistinct) {
  GraphDatabase db = SmallDb();
  CatapultResult result = RunCatapult(db, FastOptions());
  const auto& patterns = result.selection.patterns;
  for (size_t i = 0; i < patterns.size(); ++i) {
    for (size_t j = i + 1; j < patterns.size(); ++j) {
      EXPECT_FALSE(AreIsomorphic(patterns[i].graph, patterns[j].graph))
          << "patterns " << i << " and " << j << " are duplicates";
    }
  }
}

TEST(CatapultIntegrationTest, PatternsOccurInDatabase) {
  GraphDatabase db = SmallDb();
  CatapultResult result = RunCatapult(db, FastOptions());
  // Every selected pattern should be contained in at least one data graph:
  // patterns are assembled from CSG edges, and CSG edges all come from
  // member graphs, so a pattern failing this would indicate a broken
  // summary. (The closure-graph *combination* of edges is a heuristic, so
  // we allow a small number of misses but not systematic failure.)
  size_t hits = 0;
  for (const SelectedPattern& p : result.selection.patterns) {
    for (const Graph& g : db.graphs()) {
      if (ContainsSubgraph(p.graph, g)) {
        ++hits;
        break;
      }
    }
  }
  EXPECT_GE(hits * 2, result.selection.patterns.size())
      << "most patterns must occur in the data";
}

TEST(CatapultIntegrationTest, DeterministicGivenSeed) {
  GraphDatabase db = SmallDb();
  CatapultResult a = RunCatapult(db, FastOptions());
  CatapultResult b = RunCatapult(db, FastOptions());
  ASSERT_EQ(a.selection.patterns.size(), b.selection.patterns.size());
  for (size_t i = 0; i < a.selection.patterns.size(); ++i) {
    EXPECT_TRUE(StructurallyEqual(a.selection.patterns[i].graph,
                                  b.selection.patterns[i].graph));
    EXPECT_DOUBLE_EQ(a.selection.patterns[i].score,
                     b.selection.patterns[i].score);
  }
}

TEST(CatapultIntegrationTest, ClustersPartitionDatabase) {
  GraphDatabase db = SmallDb();
  CatapultResult result = RunCatapult(db, FastOptions());
  std::set<GraphId> seen;
  for (const auto& cluster : result.clusters) {
    for (GraphId id : cluster) {
      EXPECT_TRUE(seen.insert(id).second) << "graph in two clusters";
    }
  }
  EXPECT_EQ(seen.size(), db.size());
  EXPECT_EQ(result.csgs.size(), result.clusters.size());
}

TEST(CatapultIntegrationTest, SamplingPathRuns) {
  GraphDatabase db = SmallDb(77, 120);
  CatapultOptions options = FastOptions();
  options.use_sampling = true;
  options.eager.epsilon = 0.08;  // sample ~414 > 120, passthrough
  options.lazy.min_cluster_size_to_sample = 10;
  CatapultResult result = RunCatapult(db, options);
  EXPECT_FALSE(result.selection.patterns.empty());
}

TEST(CatapultIntegrationTest, SelectionScoresDecreaseWeaklyOverall) {
  // The greedy loop decays weights, so the first pattern should have the
  // highest coverage contribution among all selected ones.
  GraphDatabase db = SmallDb();
  CatapultResult result = RunCatapult(db, FastOptions());
  ASSERT_GE(result.selection.patterns.size(), 2u);
  double first_ccov = result.selection.patterns.front().ccov;
  for (const SelectedPattern& p : result.selection.patterns) {
    EXPECT_LE(p.ccov, first_ccov + 1e-9);
  }
}

TEST(CatapultIntegrationTest, PatternsSpeedUpFormulation) {
  GraphDatabase db = SmallDb();
  CatapultResult result = RunCatapult(db, FastOptions());
  QueryWorkloadOptions wl;
  wl.count = 30;
  wl.min_edges = 4;
  wl.max_edges = 12;
  wl.seed = 17;
  std::vector<Graph> queries = GenerateQueryWorkload(db, wl);
  GuiModel gui = MakeCatapultGui(result.Patterns());
  WorkloadReport report = EvaluateGui(queries, gui);
  // The pattern set must help at least some queries.
  EXPECT_GT(report.max_mu, 0.0);
  EXPECT_LT(report.mp_percent, 100.0);
}

TEST(CatapultIntegrationTest, EmptyDatabaseYieldsNothing) {
  GraphDatabase db;
  CatapultResult result = RunCatapult(db, FastOptions());
  EXPECT_TRUE(result.selection.patterns.empty());
  EXPECT_TRUE(result.clusters.empty());
}

TEST(CatapultIntegrationTest, TinyDatabaseStillWorks) {
  GraphDatabase db = SmallDb(5, 3);
  CatapultResult result = RunCatapult(db, FastOptions());
  EXPECT_EQ(result.csgs.size(), result.clusters.size());
  // With 3 graphs the pipeline must not crash; patterns are best-effort.
}

// ---------------------------------------------------------------------------
// Thread-count invariance: the parallel refactor's contract is that N
// threads produce the same bytes as one.

// The full panel, clusters included, compared exactly: structural pattern
// equality plus bit-exact doubles (EXPECT_EQ, not NEAR — the determinism
// contract is bit-identity, so even the fp accumulation order must match).
void ExpectIdenticalResults(const CatapultResult& a, const CatapultResult& b) {
  ASSERT_EQ(a.clusters.size(), b.clusters.size());
  for (size_t i = 0; i < a.clusters.size(); ++i) {
    EXPECT_EQ(a.clusters[i], b.clusters[i]) << "cluster " << i;
  }
  ASSERT_EQ(a.selection.patterns.size(), b.selection.patterns.size());
  for (size_t i = 0; i < a.selection.patterns.size(); ++i) {
    const SelectedPattern& pa = a.selection.patterns[i];
    const SelectedPattern& pb = b.selection.patterns[i];
    EXPECT_TRUE(StructurallyEqual(pa.graph, pb.graph)) << "pattern " << i;
    EXPECT_EQ(pa.score, pb.score) << "pattern " << i;
    EXPECT_EQ(pa.ccov, pb.ccov) << "pattern " << i;
    EXPECT_EQ(pa.lcov, pb.lcov) << "pattern " << i;
    EXPECT_EQ(pa.div, pb.div) << "pattern " << i;
    EXPECT_EQ(pa.source_csg, pb.source_csg) << "pattern " << i;
    EXPECT_EQ(pa.fallback, pb.fallback) << "pattern " << i;
  }
  EXPECT_EQ(a.selection.fallback_patterns, b.selection.fallback_patterns);
}

std::string ThreadScratchDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "catapult_threads_" +
                    ::testing::UnitTest::GetInstance()
                        ->current_test_info()
                        ->name() +
                    "_" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

std::string FileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(CatapultThreadsTest, ThreadCountDoesNotChangeOutput) {
  GraphDatabase db = SmallDb();

  CatapultOptions one = FastOptions();
  one.threads = 1;
  CatapultResult r1 = RunCatapult(db, one);
  ASSERT_FALSE(r1.selection.patterns.empty());
  EXPECT_EQ(r1.execution.threads, 1u);

  CatapultOptions four = FastOptions();
  four.threads = 4;
  CatapultResult r4 = RunCatapult(db, four);
  EXPECT_EQ(r4.execution.threads, 4u);

  ExpectIdenticalResults(r1, r4);
}

TEST(CatapultThreadsTest, CheckpointsAreByteIdenticalAcrossThreadCounts) {
  // Checkpoints serialise the decayed weights and the rng cursor, so a
  // byte-compare of the files is the strongest available probe that the
  // *internal* state — not just the visible panel — matched.
  GraphDatabase db = SmallDb();

  CatapultOptions one = FastOptions();
  one.threads = 1;
  one.checkpoint_dir = ThreadScratchDir("one");
  RunCatapult(db, one);

  CatapultOptions four = FastOptions();
  four.threads = 4;
  four.checkpoint_dir = ThreadScratchDir("four");
  RunCatapult(db, four);

  for (const char* file : {"clustering.ckpt", "csgs.ckpt", "selection.ckpt"}) {
    std::string a = one.checkpoint_dir + "/" + file;
    std::string b = four.checkpoint_dir + "/" + file;
    ASSERT_TRUE(std::filesystem::exists(a)) << a;
    ASSERT_TRUE(std::filesystem::exists(b)) << b;
    EXPECT_EQ(FileBytes(a), FileBytes(b)) << file << " differs";
  }
  std::filesystem::remove_all(one.checkpoint_dir);
  std::filesystem::remove_all(four.checkpoint_dir);
}

TEST(CatapultThreadsTest, KillAndResumeUnderFourThreadsIsBitIdentical) {
  // Mid-run kill while four workers are live, then resume — still must
  // reproduce the uninterrupted single-thread panel exactly.
  GraphDatabase db = SmallDb();
  CatapultOptions baseline_options = FastOptions();
  baseline_options.threads = 1;
  CatapultResult baseline = RunCatapult(db, baseline_options);
  ASSERT_FALSE(baseline.selection.patterns.empty());

  CatapultOptions options = FastOptions();
  options.threads = 4;
  options.checkpoint_dir = ThreadScratchDir("kill");
  {
    failpoint::ScopedFailpoint fp("catapult.crash_after_csg_checkpoint", 1);
    CatapultResult killed = RunCatapult(db, options);
    EXPECT_FALSE(killed.execution.selection_complete);
  }

  options.resume = true;
  CatapultResult resumed = RunCatapult(db, options);
  EXPECT_EQ(resumed.execution.resumed_from, "csgs");
  ExpectIdenticalResults(baseline, resumed);
  std::filesystem::remove_all(options.checkpoint_dir);
}

TEST(CatapultThreadsTest, SamplingPathIsThreadCountInvariant) {
  GraphDatabase db = SmallDb(77, 120);
  CatapultOptions one = FastOptions();
  one.use_sampling = true;
  one.eager.epsilon = 0.08;
  one.lazy.min_cluster_size_to_sample = 10;
  one.threads = 1;
  CatapultResult r1 = RunCatapult(db, one);

  CatapultOptions four = one;
  four.threads = 4;
  CatapultResult r4 = RunCatapult(db, four);
  ExpectIdenticalResults(r1, r4);
}

TEST(CatapultThreadsTest, RejectsAbsurdThreadCount) {
  GraphDatabase db = SmallDb(5, 3);
  CatapultOptions options = FastOptions();
  options.threads = 100000;
  CatapultResult result = RunCatapult(db, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.option_errors[0].field, "threads");
}

TEST(CatapultThreadsTest, ReportsPhaseParallelStats) {
  GraphDatabase db = SmallDb();
  CatapultOptions options = FastOptions();
  options.threads = 2;
  CatapultResult result = RunCatapult(db, options);
  EXPECT_EQ(result.execution.threads, 2u);
  // Every phase did parallel work and the accounting is self-consistent:
  // busy time accrued and items were executed through the pool.
  EXPECT_GT(result.execution.clustering_parallel.parallel_items, 0u);
  EXPECT_GT(result.execution.csg_parallel.parallel_items, 0u);
  EXPECT_GT(result.execution.selection_parallel.parallel_items, 0u);
  EXPECT_GE(result.execution.clustering_parallel.wall_seconds, 0.0);
  EXPECT_GE(result.execution.selection_parallel.busy_seconds, 0.0);
}

}  // namespace
}  // namespace catapult
