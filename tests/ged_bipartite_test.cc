#include "src/iso/ged_bipartite.h"

#include <gtest/gtest.h>

#include "src/graph/algorithms.h"
#include "src/iso/ged.h"
#include "src/util/rng.h"

namespace catapult {
namespace {

Graph Ring(size_t n, Label label = 0) {
  Graph g;
  for (size_t i = 0; i < n; ++i) g.AddVertex(label);
  for (size_t i = 0; i < n; ++i) {
    g.AddEdge(static_cast<VertexId>(i), static_cast<VertexId>((i + 1) % n));
  }
  return g;
}

Graph Path(size_t n, Label label = 0) {
  Graph g;
  for (size_t i = 0; i < n; ++i) g.AddVertex(label);
  for (size_t i = 0; i + 1 < n; ++i) {
    g.AddEdge(static_cast<VertexId>(i), static_cast<VertexId>(i + 1));
  }
  return g;
}

TEST(AssignmentTest, IdentityMatrix) {
  // Cost 0 on the diagonal, 1 elsewhere: optimum picks the diagonal.
  std::vector<double> cost = {0, 1, 1, 1, 0, 1, 1, 1, 0};
  std::vector<size_t> assignment;
  EXPECT_DOUBLE_EQ(SolveAssignment(cost, 3, &assignment), 0.0);
  EXPECT_EQ(assignment, (std::vector<size_t>{0, 1, 2}));
}

TEST(AssignmentTest, ForcedPermutation) {
  // Row i must take column (i+1) % 3.
  std::vector<double> cost = {9, 1, 9, 9, 9, 1, 1, 9, 9};
  std::vector<size_t> assignment;
  EXPECT_DOUBLE_EQ(SolveAssignment(cost, 3, &assignment), 3.0);
  EXPECT_EQ(assignment, (std::vector<size_t>{1, 2, 0}));
}

TEST(AssignmentTest, EmptyProblem) {
  EXPECT_DOUBLE_EQ(SolveAssignment({}, 0), 0.0);
}

TEST(AssignmentTest, OneByOne) {
  EXPECT_DOUBLE_EQ(SolveAssignment({7.0}, 1), 7.0);
}

TEST(BipartiteGedTest, IdenticalGraphsZero) {
  Graph g = Ring(5, 2);
  EXPECT_DOUBLE_EQ(BipartiteGed(g, g), 0.0);
}

TEST(BipartiteGedTest, UpperBoundsExactGed) {
  Rng rng(61);
  for (int trial = 0; trial < 25; ++trial) {
    Graph base = Ring(6, static_cast<Label>(trial % 3));
    Graph a = RandomConnectedSubgraph(base, 3 + trial % 4, rng);
    Graph b = RandomConnectedSubgraph(base, 2 + trial % 5, rng);
    if (a.NumEdges() == 0 || b.NumEdges() == 0) continue;
    GedResult exact = GraphEditDistance(a, b);
    double approx = BipartiteGed(a, b);
    if (exact.exact) {
      EXPECT_GE(approx + 1e-9, exact.distance)
          << a.DebugString() << " vs " << b.DebugString();
    }
    EXPECT_GE(approx + 1e-9, GedLowerBound(a, b));
  }
}

TEST(BipartiteGedTest, ExactOnSimpleCases) {
  // One edge difference: the assignment method finds the tight bound here.
  EXPECT_DOUBLE_EQ(BipartiteGed(Path(4), Ring(4)), 1.0);
  // One extra vertex+edge.
  EXPECT_DOUBLE_EQ(BipartiteGed(Path(3), Path(4)), 2.0);
}

TEST(BipartiteGedTest, SymmetricOnSmallCases) {
  Graph a = Ring(5);
  Graph b = Path(4);
  EXPECT_DOUBLE_EQ(BipartiteGed(a, b), BipartiteGed(b, a));
}

TEST(BipartiteGedTest, LabelMismatchCosts) {
  Graph a = Path(3, 0);
  Graph b = Path(3, 0);
  b.SetVertexLabel(1, 5);
  EXPECT_DOUBLE_EQ(BipartiteGed(a, b), 1.0);
}

TEST(BipartiteGedTest, DisjointLabelGraphs) {
  // Completely different labels: everything is deleted + inserted.
  Graph a = Path(3, 0);
  Graph b = Path(3, 9);
  // 3 relabels (cheapest) and edges align: exact GED is 3.
  double approx = BipartiteGed(a, b);
  EXPECT_GE(approx, 3.0 - 1e-9);
}

}  // namespace
}  // namespace catapult
