#include <gtest/gtest.h>

#include <set>

#include "src/cluster/facility_location.h"
#include "src/cluster/feature_vectors.h"
#include "src/cluster/fine_clustering.h"
#include "src/cluster/kmeans.h"
#include "src/cluster/pipeline.h"
#include "src/data/molecule_generator.h"
#include "src/tree/canonical.h"

namespace catapult {
namespace {

DynamicBitset Bits(size_t n, std::initializer_list<size_t> set) {
  DynamicBitset b(n);
  for (size_t i : set) b.Set(i);
  return b;
}

TEST(KMeansTest, SeparatesObviousClusters) {
  // Two well-separated groups in 4 dimensions.
  std::vector<DynamicBitset> points;
  for (int i = 0; i < 5; ++i) points.push_back(Bits(4, {0, 1}));
  for (int i = 0; i < 5; ++i) points.push_back(Bits(4, {2, 3}));
  KMeansOptions options;
  options.k = 2;
  Rng rng(17);
  KMeansResult result = KMeansCluster(points, options, rng);
  ASSERT_EQ(result.assignment.size(), 10u);
  // All of the first five share a cluster, all of the last five the other.
  for (int i = 1; i < 5; ++i) {
    EXPECT_EQ(result.assignment[static_cast<size_t>(i)],
              result.assignment[0]);
  }
  for (int i = 6; i < 10; ++i) {
    EXPECT_EQ(result.assignment[static_cast<size_t>(i)],
              result.assignment[5]);
  }
  EXPECT_NE(result.assignment[0], result.assignment[5]);
  EXPECT_DOUBLE_EQ(result.inertia, 0.0);
}

TEST(KMeansTest, KLargerThanPoints) {
  std::vector<DynamicBitset> points = {Bits(2, {0}), Bits(2, {1})};
  KMeansOptions options;
  options.k = 10;
  Rng rng(3);
  KMeansResult result = KMeansCluster(points, options, rng);
  EXPECT_EQ(result.assignment.size(), 2u);
}

TEST(KMeansTest, Deterministic) {
  std::vector<DynamicBitset> points;
  Rng data_rng(5);
  for (int i = 0; i < 30; ++i) {
    DynamicBitset b(8);
    for (size_t d = 0; d < 8; ++d) {
      if (data_rng.Bernoulli(0.4)) b.Set(d);
    }
    points.push_back(std::move(b));
  }
  KMeansOptions options;
  options.k = 4;
  Rng rng1(9);
  Rng rng2(9);
  EXPECT_EQ(KMeansCluster(points, options, rng1).assignment,
            KMeansCluster(points, options, rng2).assignment);
}

TEST(FacilityLocationTest, SelectsDiverseRepresentatives) {
  // Three pairs of near-duplicate subtrees; selection should hit all three
  // families before duplicating one.
  auto MakeSubtree = [](std::vector<Label> labels) {
    FrequentSubtree fs;
    for (Label l : labels) fs.tree.AddVertex(l);
    for (size_t i = 0; i + 1 < labels.size(); ++i) {
      fs.tree.AddEdge(static_cast<VertexId>(i), static_cast<VertexId>(i + 1));
    }
    fs.canonical = CanonicalTreeString(fs.tree);
    return fs;
  };
  std::vector<FrequentSubtree> subtrees;
  subtrees.push_back(MakeSubtree({0, 0, 0}));
  subtrees.push_back(MakeSubtree({0, 0, 0, 0}));
  subtrees.push_back(MakeSubtree({1, 1, 1}));
  subtrees.push_back(MakeSubtree({1, 1, 1, 1}));
  subtrees.push_back(MakeSubtree({2, 2}));
  subtrees.push_back(MakeSubtree({2, 2, 2}));
  FacilitySelectionOptions options;
  options.max_selected = 3;
  std::vector<size_t> selected =
      SelectRepresentativeSubtrees(subtrees, options);
  ASSERT_EQ(selected.size(), 3u);
  // All selections distinct, and (since coverage of a family saturates
  // after one pick) at least two label families must be represented.
  std::set<size_t> distinct(selected.begin(), selected.end());
  EXPECT_EQ(distinct.size(), 3u);
  std::set<Label> families;
  for (size_t idx : selected) {
    families.insert(subtrees[idx].tree.VertexLabel(0));
  }
  EXPECT_GE(families.size(), 2u);
}

TEST(FacilityLocationTest, EmptyInput) {
  FacilitySelectionOptions options;
  EXPECT_TRUE(SelectRepresentativeSubtrees({}, options).empty());
}

TEST(FeatureVectorsTest, BitsMatchContainment) {
  GraphDatabase db;
  Label C = db.labels().Intern("C");
  Label O = db.labels().Intern("O");
  // g0: C-C; g1: C-O.
  {
    Graph g;
    g.AddVertex(C);
    g.AddVertex(C);
    g.AddEdge(0, 1);
    db.Add(std::move(g));
  }
  {
    Graph g;
    g.AddVertex(C);
    g.AddVertex(O);
    g.AddEdge(0, 1);
    db.Add(std::move(g));
  }
  FrequentSubtree cc;
  cc.tree.AddVertex(C);
  cc.tree.AddVertex(C);
  cc.tree.AddEdge(0, 1);
  FrequentSubtree co;
  co.tree.AddVertex(C);
  co.tree.AddVertex(O);
  co.tree.AddEdge(0, 1);
  auto features = BuildFeatureVectors(db, {0, 1}, {cc, co});
  ASSERT_EQ(features.size(), 2u);
  EXPECT_TRUE(features[0].Test(0));
  EXPECT_FALSE(features[0].Test(1));
  EXPECT_FALSE(features[1].Test(0));
  EXPECT_TRUE(features[1].Test(1));
}

TEST(FineClusteringTest, SplitsOversizedClusters) {
  MoleculeGeneratorOptions gen;
  gen.num_graphs = 40;
  gen.seed = 77;
  GraphDatabase db = GenerateMoleculeDatabase(gen);
  std::vector<GraphId> all;
  for (GraphId i = 0; i < db.size(); ++i) all.push_back(i);
  FineClusteringOptions options;
  options.max_cluster_size = 10;
  options.mcs.node_budget = 3000;
  Rng rng(1);
  auto clusters = FineCluster(db, {all}, options, rng);
  size_t total = 0;
  for (const auto& c : clusters) {
    EXPECT_LE(c.size(), 10u);
    EXPECT_FALSE(c.empty());
    total += c.size();
  }
  EXPECT_EQ(total, 40u);  // partition: nothing lost or duplicated
  std::set<GraphId> seen;
  for (const auto& c : clusters) {
    for (GraphId id : c) EXPECT_TRUE(seen.insert(id).second);
  }
}

TEST(FineClusteringTest, SmallClustersUntouched) {
  GraphDatabase db = GenerateMoleculeDatabase(
      {.num_graphs = 8, .seed = 3});
  std::vector<GraphId> cluster = {0, 1, 2};
  FineClusteringOptions options;
  options.max_cluster_size = 5;
  Rng rng(2);
  auto clusters = FineCluster(db, {cluster}, options, rng);
  ASSERT_EQ(clusters.size(), 1u);
  EXPECT_EQ(clusters[0].size(), 3u);
}

TEST(PipelineTest, HybridPartitionsDatabase) {
  MoleculeGeneratorOptions gen;
  gen.num_graphs = 60;
  gen.seed = 11;
  GraphDatabase db = GenerateMoleculeDatabase(gen);
  SmallGraphClusteringOptions options;
  options.max_cluster_size = 15;
  options.fine_mcs.node_budget = 3000;
  Rng rng(4);
  ClusteringResult result = SmallGraphClustering(db, options, rng);
  size_t total = 0;
  std::set<GraphId> seen;
  for (const auto& c : result.clusters) {
    EXPECT_LE(c.size(), 15u);
    total += c.size();
    for (GraphId id : c) EXPECT_TRUE(seen.insert(id).second);
  }
  EXPECT_EQ(total, 60u);
}

TEST(PipelineTest, CoarseOnlyMayKeepLargeClusters) {
  MoleculeGeneratorOptions gen;
  gen.num_graphs = 60;
  gen.seed = 11;
  GraphDatabase db = GenerateMoleculeDatabase(gen);
  SmallGraphClusteringOptions options;
  options.mode = ClusteringMode::kCoarseOnly;
  options.max_cluster_size = 15;
  Rng rng(4);
  ClusteringResult result = SmallGraphClustering(db, options, rng);
  size_t total = 0;
  for (const auto& c : result.clusters) total += c.size();
  EXPECT_EQ(total, 60u);
}

TEST(PipelineTest, FineOnlySkipsMining) {
  MoleculeGeneratorOptions gen;
  gen.num_graphs = 30;
  gen.seed = 12;
  GraphDatabase db = GenerateMoleculeDatabase(gen);
  SmallGraphClusteringOptions options;
  options.mode = ClusteringMode::kFineOnly;
  options.max_cluster_size = 10;
  options.fine_mcs.node_budget = 3000;
  Rng rng(4);
  ClusteringResult result = SmallGraphClustering(db, options, rng);
  EXPECT_TRUE(result.features.empty());
  size_t total = 0;
  for (const auto& c : result.clusters) {
    EXPECT_LE(c.size(), 10u);
    total += c.size();
  }
  EXPECT_EQ(total, 30u);
}

}  // namespace
}  // namespace catapult
