// Property-based sweeps over randomly generated inputs (parameterized
// gtest): algebraic invariants that must hold for every input, not just
// handcrafted cases.

#include <gtest/gtest.h>

#include "src/csg/csg.h"
#include "src/data/molecule_generator.h"
#include "src/formulate/evaluate.h"
#include "src/formulate/steps.h"
#include "src/graph/algorithms.h"
#include "src/iso/ged.h"
#include "src/iso/mcs.h"
#include "src/iso/vf2.h"
#include "src/tree/canonical.h"

namespace catapult {
namespace {

// A deterministic random labelled connected graph for a given seed.
Graph RandomGraph(uint64_t seed, size_t min_v = 5, size_t max_v = 14) {
  Rng rng(seed * 2654435761ULL + 17);
  size_t n = min_v + rng.UniformInt(max_v - min_v + 1);
  Graph g;
  g.AddVertex(static_cast<Label>(rng.UniformInt(4)));
  for (size_t v = 1; v < n; ++v) {
    VertexId parent = static_cast<VertexId>(rng.UniformInt(v));
    VertexId child = g.AddVertex(static_cast<Label>(rng.UniformInt(4)));
    g.AddEdge(parent, child);
  }
  // A few extra edges (may close cycles).
  size_t extra = rng.UniformInt(3);
  for (size_t e = 0; e < extra; ++e) {
    VertexId u = static_cast<VertexId>(rng.UniformInt(n));
    VertexId v = static_cast<VertexId>(rng.UniformInt(n));
    if (u != v && !g.HasEdge(u, v)) g.AddEdge(u, v);
  }
  return g;
}

// Random vertex-permuted copy of g.
Graph Permuted(const Graph& g, Rng& rng) {
  std::vector<VertexId> perm(g.NumVertices());
  for (size_t i = 0; i < perm.size(); ++i) perm[i] = static_cast<VertexId>(i);
  rng.Shuffle(perm);
  Graph out;
  std::vector<VertexId> new_id(g.NumVertices());
  for (VertexId v : perm) new_id[v] = out.AddVertex(g.VertexLabel(v));
  for (const Edge& e : g.EdgeList()) {
    out.AddEdge(new_id[e.u], new_id[e.v], e.label);
  }
  return out;
}

class GraphProperty : public ::testing::TestWithParam<int> {};

TEST_P(GraphProperty, RandomSubgraphIsContained) {
  Graph g = RandomGraph(static_cast<uint64_t>(GetParam()));
  Rng rng(static_cast<uint64_t>(GetParam()) + 1000);
  Graph sub = RandomConnectedSubgraph(g, 1 + rng.UniformInt(5), rng);
  if (sub.NumVertices() == 0) return;
  EXPECT_TRUE(ContainsSubgraph(sub, g));
}

TEST_P(GraphProperty, PermutedCopyIsIsomorphic) {
  Graph g = RandomGraph(static_cast<uint64_t>(GetParam()));
  Rng rng(static_cast<uint64_t>(GetParam()) + 2000);
  Graph p = Permuted(g, rng);
  EXPECT_TRUE(AreIsomorphic(g, p));
  EXPECT_EQ(GraphFingerprint(g), GraphFingerprint(p));
}

TEST_P(GraphProperty, GedSelfIsZeroAndSymmetric) {
  Graph a = RandomGraph(static_cast<uint64_t>(GetParam()), 4, 8);
  Graph b = RandomGraph(static_cast<uint64_t>(GetParam()) + 5000, 4, 8);
  EXPECT_DOUBLE_EQ(GraphEditDistance(a, a).distance, 0.0);
  GedResult ab = GraphEditDistance(a, b);
  GedResult ba = GraphEditDistance(b, a);
  if (ab.exact && ba.exact) {
    EXPECT_DOUBLE_EQ(ab.distance, ba.distance);
  }
  EXPECT_GE(ab.distance + 1e-9, GedLowerBound(a, b));
}

TEST_P(GraphProperty, GedOfPermutedCopyIsZero) {
  Graph g = RandomGraph(static_cast<uint64_t>(GetParam()), 4, 8);
  Rng rng(static_cast<uint64_t>(GetParam()) + 3000);
  Graph p = Permuted(g, rng);
  GedResult r = GraphEditDistance(g, p);
  if (r.exact) EXPECT_DOUBLE_EQ(r.distance, 0.0);
}

TEST_P(GraphProperty, MccsSimilarityBoundsAndIdentity) {
  Graph a = RandomGraph(static_cast<uint64_t>(GetParam()), 4, 9);
  Graph b = RandomGraph(static_cast<uint64_t>(GetParam()) + 7000, 4, 9);
  McsOptions options;
  options.node_budget = 50000;
  double self = McsSimilarity(a, a, options);
  EXPECT_DOUBLE_EQ(self, 1.0);
  double sim = McsSimilarity(a, b, options);
  EXPECT_GE(sim, 0.0);
  EXPECT_LE(sim, 1.0);
  // MCCS (connected) can never beat unconstrained MCS.
  McsOptions unconnected = options;
  unconnected.connected = false;
  EXPECT_LE(sim, McsSimilarity(a, b, unconnected) + 1e-9);
}

TEST_P(GraphProperty, CsgContainsAllMembers) {
  // Build a little cluster of permuted/decorated variants of one graph.
  Graph base = RandomGraph(static_cast<uint64_t>(GetParam()), 6, 10);
  Rng rng(static_cast<uint64_t>(GetParam()) + 9000);
  GraphDatabase db;
  for (int i = 0; i < 4; ++i) {
    Graph variant = Permuted(base, rng);
    if (rng.Bernoulli(0.5)) {
      VertexId host = static_cast<VertexId>(
          rng.UniformInt(variant.NumVertices()));
      VertexId leaf = variant.AddVertex(static_cast<Label>(rng.UniformInt(4)));
      variant.AddEdge(host, leaf);
    }
    db.Add(std::move(variant));
  }
  std::vector<GraphId> cluster = {0, 1, 2, 3};
  ClusterSummaryGraph csg = BuildCsg(db, cluster);
  Graph summary = csg.ToGraph();
  for (GraphId id : cluster) {
    EXPECT_TRUE(ContainsSubgraph(db.graph(id), summary))
        << "member " << id << " lost by the closure";
  }
  // Supports are consistent: every edge supported by at least one member,
  // no support exceeding the cluster size.
  for (const auto& e : csg.edges()) {
    EXPECT_GE(e.support.Count(), 1u);
    EXPECT_LE(e.support.Count(), cluster.size());
  }
}

TEST_P(GraphProperty, CanonicalStringMatchesIsomorphismForTrees) {
  // Equal canonical strings <=> isomorphic, for random trees.
  Rng rng(static_cast<uint64_t>(GetParam()) + 11000);
  auto RandomTree = [&](uint64_t seed) {
    Rng local(seed);
    size_t n = 3 + local.UniformInt(8);
    Graph t;
    t.AddVertex(static_cast<Label>(local.UniformInt(3)));
    for (size_t v = 1; v < n; ++v) {
      VertexId parent = static_cast<VertexId>(local.UniformInt(v));
      t.AddEdge(parent, t.AddVertex(static_cast<Label>(local.UniformInt(3))));
    }
    return t;
  };
  Graph a = RandomTree(static_cast<uint64_t>(GetParam()) * 31 + 1);
  Graph b = RandomTree(static_cast<uint64_t>(GetParam()) * 37 + 2);
  bool same_string = CanonicalTreeString(a) == CanonicalTreeString(b);
  bool isomorphic = AreIsomorphic(a, b);
  EXPECT_EQ(same_string, isomorphic);
  (void)rng;
}

TEST_P(GraphProperty, FormulationNeverWorseThanEdgeAtATime) {
  // With a labelled panel, step_P <= step_total always (a pattern is only
  // used when it saves steps... actually using any k-edge pattern with
  // k >= 2 strictly saves steps; with no usable pattern the counts equal).
  Graph query = RandomGraph(static_cast<uint64_t>(GetParam()), 6, 12);
  std::vector<Graph> panel;
  Rng rng(static_cast<uint64_t>(GetParam()) + 13000);
  panel.push_back(RandomConnectedSubgraph(query, 3, rng));
  panel.push_back(RandomConnectedSubgraph(query, 4, rng));
  GuiModel gui = MakeCatapultGui(panel);
  QueryFormulation f = FormulateQuery(query, gui);
  EXPECT_LE(f.steps_patterns, f.steps_total);
  EXPECT_GE(f.mu, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GraphProperty, ::testing::Range(0, 25));

}  // namespace
}  // namespace catapult
