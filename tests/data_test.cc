#include <gtest/gtest.h>

#include <set>

#include "src/data/molecule_generator.h"
#include "src/data/query_generator.h"
#include "src/graph/algorithms.h"
#include "src/iso/vf2.h"

namespace catapult {
namespace {

TEST(MoleculeGeneratorTest, ProducesRequestedCount) {
  MoleculeGeneratorOptions options;
  options.num_graphs = 25;
  options.seed = 1;
  GraphDatabase db = GenerateMoleculeDatabase(options);
  EXPECT_EQ(db.size(), 25u);
}

TEST(MoleculeGeneratorTest, GraphsAreConnectedSimpleAndBounded) {
  MoleculeGeneratorOptions options;
  options.num_graphs = 50;
  options.min_vertices = 8;
  options.max_vertices = 20;
  options.seed = 2;
  GraphDatabase db = GenerateMoleculeDatabase(options);
  for (const Graph& g : db.graphs()) {
    EXPECT_TRUE(IsConnected(g));
    EXPECT_GE(g.NumVertices(), 5u);  // scaffold size floor
    EXPECT_LE(g.NumVertices(), 22u);
    for (VertexId v = 0; v < g.NumVertices(); ++v) {
      EXPECT_LE(g.Degree(v), 4u) << "molecule degree cap";
    }
  }
}

TEST(MoleculeGeneratorTest, Deterministic) {
  MoleculeGeneratorOptions options;
  options.num_graphs = 10;
  options.seed = 42;
  GraphDatabase a = GenerateMoleculeDatabase(options);
  GraphDatabase b = GenerateMoleculeDatabase(options);
  ASSERT_EQ(a.size(), b.size());
  for (GraphId i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(StructurallyEqual(a.graph(i), b.graph(i)));
  }
}

TEST(MoleculeGeneratorTest, CarbonDominates) {
  MoleculeGeneratorOptions options;
  options.num_graphs = 100;
  options.seed = 3;
  GraphDatabase db = GenerateMoleculeDatabase(options);
  Label carbon = db.labels().Find("C");
  ASSERT_NE(carbon, LabelMap::kUnknown);
  size_t carbon_count = 0;
  size_t total = 0;
  for (const Graph& g : db.graphs()) {
    for (VertexId v = 0; v < g.NumVertices(); ++v) {
      ++total;
      if (g.VertexLabel(v) == carbon) ++carbon_count;
    }
  }
  EXPECT_GT(static_cast<double>(carbon_count) / static_cast<double>(total),
            0.5);
}

TEST(MoleculeGeneratorTest, ScaffoldFamiliesShareMotifs) {
  // With a single family, all graphs contain the family scaffold.
  MoleculeGeneratorOptions options;
  options.num_graphs = 10;
  options.scaffold_families = 1;  // benzene-like C6 ring
  options.seed = 4;
  GraphDatabase db = GenerateMoleculeDatabase(options);
  Label C = db.labels().Find("C");
  Graph six_ring;
  for (int i = 0; i < 6; ++i) six_ring.AddVertex(C);
  for (int i = 0; i < 6; ++i) {
    six_ring.AddEdge(static_cast<VertexId>(i),
                     static_cast<VertexId>((i + 1) % 6));
  }
  for (const Graph& g : db.graphs()) {
    EXPECT_TRUE(ContainsSubgraph(six_ring, g));
  }
}

TEST(QueryWorkloadTest, SizesWithinRange) {
  GraphDatabase db = GenerateMoleculeDatabase(
      {.num_graphs = 30, .min_vertices = 12, .max_vertices = 25, .seed = 5});
  QueryWorkloadOptions options;
  options.count = 40;
  options.min_edges = 4;
  options.max_edges = 10;
  std::vector<Graph> queries = GenerateQueryWorkload(db, options);
  EXPECT_EQ(queries.size(), 40u);
  for (const Graph& q : queries) {
    EXPECT_TRUE(IsConnected(q));
    EXPECT_GE(q.NumEdges(), 1u);
    EXPECT_LE(q.NumEdges(), 10u);
  }
}

TEST(QueryWorkloadTest, QueriesAreSubgraphsOfSomeDataGraph) {
  GraphDatabase db = GenerateMoleculeDatabase(
      {.num_graphs = 15, .seed = 6});
  QueryWorkloadOptions options;
  options.count = 10;
  options.min_edges = 3;
  options.max_edges = 6;
  options.seed = 9;
  for (const Graph& q : GenerateQueryWorkload(db, options)) {
    bool contained = false;
    for (const Graph& g : db.graphs()) {
      if (ContainsSubgraph(q, g)) {
        contained = true;
        break;
      }
    }
    EXPECT_TRUE(contained);
  }
}

TEST(QueryMixTest, RespectsCountAndSizes) {
  GraphDatabase db = GenerateMoleculeDatabase(
      {.num_graphs = 40, .seed = 7});
  // Frequent pool: a handful of small subgraphs of the db.
  Rng rng(3);
  std::vector<Graph> pool;
  for (int i = 0; i < 5; ++i) {
    pool.push_back(RandomConnectedSubgraph(db.graph(0), 5, rng));
  }
  QueryMixOptions options;
  options.count = 20;
  options.infrequent_fraction = 0.3;
  options.verification_sample = 20;
  std::vector<Graph> mix = GenerateQueryMix(db, pool, options);
  EXPECT_EQ(mix.size(), 20u);
  for (const Graph& q : mix) {
    EXPECT_GE(q.NumEdges(), options.min_edges);
  }
}

TEST(QueryMixTest, ZeroInfrequentDrawsOnlyFromPool) {
  GraphDatabase db = GenerateMoleculeDatabase(
      {.num_graphs = 20, .seed = 8});
  Graph pool_graph;
  Label c = db.labels().Find("C");
  for (int i = 0; i < 5; ++i) pool_graph.AddVertex(c);
  for (int i = 0; i + 1 < 5; ++i) {
    pool_graph.AddEdge(static_cast<VertexId>(i),
                       static_cast<VertexId>(i + 1));
  }
  QueryMixOptions options;
  options.count = 8;
  options.infrequent_fraction = 0.0;
  std::vector<Graph> mix = GenerateQueryMix(db, {pool_graph}, options);
  ASSERT_EQ(mix.size(), 8u);
  for (const Graph& q : mix) {
    EXPECT_TRUE(StructurallyEqual(q, pool_graph));
  }
}

}  // namespace
}  // namespace catapult

namespace catapult {
namespace {

TEST(MoleculeGeneratorTest, ExtendedAlphabet) {
  MoleculeGeneratorOptions options;
  options.num_graphs = 60;
  options.alphabet_size = 20;
  options.seed = 9;
  GraphDatabase db = GenerateMoleculeDatabase(options);
  // Tail labels appear...
  EXPECT_NE(db.labels().Find("X8"), LabelMap::kUnknown);
  // ...and the database actually uses more than the 8 core labels.
  EXPECT_GT(db.Stats().num_vertex_labels, 8u);
}

TEST(MoleculeGeneratorTest, AlphabetClampedToAtLeastTwo) {
  MoleculeGeneratorOptions options;
  options.num_graphs = 5;
  options.alphabet_size = 1;  // clamped to 2
  options.seed = 10;
  GraphDatabase db = GenerateMoleculeDatabase(options);
  EXPECT_EQ(db.size(), 5u);
}

}  // namespace
}  // namespace catapult
