#include <gtest/gtest.h>

#include "src/data/molecule_generator.h"
#include "src/graph/algorithms.h"
#include "src/iso/vf2.h"
#include "src/mining/frequent_edges.h"
#include "src/mining/subgraph_miner.h"
#include "src/mining/subtree_miner.h"

namespace catapult {
namespace {

// A tiny handcrafted database: triangles C-C-O plus C-N paths.
GraphDatabase MakeSmallDb() {
  GraphDatabase db;
  Label C = db.labels().Intern("C");
  Label O = db.labels().Intern("O");
  Label N = db.labels().Intern("N");
  for (int i = 0; i < 6; ++i) {
    Graph g;
    VertexId c1 = g.AddVertex(C);
    VertexId c2 = g.AddVertex(C);
    VertexId o = g.AddVertex(O);
    g.AddEdge(c1, c2);
    g.AddEdge(c2, o);
    g.AddEdge(o, c1);
    if (i % 2 == 0) {  // half also carry a C-N arm
      VertexId n = g.AddVertex(N);
      g.AddEdge(c1, n);
    }
    db.Add(std::move(g));
  }
  return db;
}

TEST(SubtreeMinerTest, FindsFrequentEdges) {
  GraphDatabase db = MakeSmallDb();
  SubtreeMinerOptions options;
  options.min_support = 0.9;
  options.max_edges = 1;
  auto mined = MineFrequentSubtrees(db, options);
  // C-C and C-O occur in all graphs; C-N only in half.
  ASSERT_EQ(mined.size(), 2u);
  for (const auto& fs : mined) {
    EXPECT_EQ(fs.tree.NumEdges(), 1u);
    EXPECT_EQ(fs.support.Count(), 6u);
    EXPECT_DOUBLE_EQ(fs.frequency, 1.0);
  }
}

TEST(SubtreeMinerTest, SupportThresholdFilters) {
  GraphDatabase db = MakeSmallDb();
  SubtreeMinerOptions options;
  options.min_support = 0.4;  // now C-N (50%) qualifies
  options.max_edges = 1;
  auto mined = MineFrequentSubtrees(db, options);
  EXPECT_EQ(mined.size(), 3u);
}

TEST(SubtreeMinerTest, GrowsMultiEdgeTrees) {
  GraphDatabase db = MakeSmallDb();
  SubtreeMinerOptions options;
  options.min_support = 0.9;
  options.max_edges = 2;
  auto mined = MineFrequentSubtrees(db, options);
  bool has_two_edge = false;
  for (const auto& fs : mined) {
    EXPECT_TRUE(IsTree(fs.tree));
    if (fs.tree.NumEdges() == 2) has_two_edge = true;
    // Support must be honest: re-count from scratch.
    DynamicBitset recount = CountSupport(fs.tree, db);
    EXPECT_EQ(recount.Count(), fs.support.Count());
  }
  EXPECT_TRUE(has_two_edge);
}

TEST(SubtreeMinerTest, CanonicalStringsAreUnique) {
  GraphDatabase db = MakeSmallDb();
  SubtreeMinerOptions options;
  options.min_support = 0.3;
  options.max_edges = 3;
  auto mined = MineFrequentSubtrees(db, options);
  std::set<std::string> canon;
  for (const auto& fs : mined) {
    EXPECT_TRUE(canon.insert(fs.canonical).second)
        << "duplicate subtree " << fs.canonical;
  }
}

TEST(SubtreeMinerTest, AntiMonotoneFrequencies) {
  GraphDatabase db = MakeSmallDb();
  SubtreeMinerOptions options;
  options.min_support = 0.3;
  options.max_edges = 3;
  auto mined = MineFrequentSubtrees(db, options);
  // Every mined subtree with k>1 edges has frequency <= the max frequency
  // of (k-1)-edge subtrees (anti-monotonicity sanity).
  double max_freq_by_size[8] = {0};
  for (const auto& fs : mined) {
    size_t k = fs.tree.NumEdges();
    max_freq_by_size[k] = std::max(max_freq_by_size[k], fs.frequency);
  }
  for (size_t k = 2; k <= 3; ++k) {
    if (max_freq_by_size[k] > 0) {
      EXPECT_LE(max_freq_by_size[k], max_freq_by_size[k - 1] + 1e-12);
    }
  }
}

TEST(SubtreeMinerTest, EmptyInputYieldsNothing) {
  GraphDatabase db;
  SubtreeMinerOptions options;
  EXPECT_TRUE(MineFrequentSubtrees(db, options).empty());
}

TEST(SubtreeMinerTest, MaxResultsCap) {
  GraphDatabase db = MakeSmallDb();
  SubtreeMinerOptions options;
  options.min_support = 0.3;
  options.max_edges = 3;
  options.max_results = 4;
  EXPECT_LE(MineFrequentSubtrees(db, options).size(), 4u);
}

TEST(SubgraphMinerTest, FindsTriangle) {
  GraphDatabase db = MakeSmallDb();
  SubgraphMinerOptions options;
  options.min_support = 0.9;
  options.max_edges = 3;
  auto mined = MineFrequentSubgraphs(db, options);
  bool found_triangle = false;
  for (const auto& fs : mined) {
    if (fs.graph.NumEdges() == 3 && fs.graph.NumVertices() == 3) {
      found_triangle = true;
      EXPECT_EQ(fs.support.Count(), 6u);
    }
  }
  EXPECT_TRUE(found_triangle) << "cycle extension must discover triangles";
}

TEST(SubgraphMinerTest, SupportsAreHonest) {
  GraphDatabase db = MakeSmallDb();
  SubgraphMinerOptions options;
  options.min_support = 0.4;
  options.max_edges = 3;
  for (const auto& fs : MineFrequentSubgraphs(db, options)) {
    size_t count = 0;
    for (const Graph& g : db.graphs()) {
      if (ContainsSubgraph(fs.graph, g)) ++count;
    }
    EXPECT_EQ(count, fs.support.Count());
  }
}

TEST(SubgraphMinerTest, PatternSetRespectsBudget) {
  GraphDatabase db = MakeSmallDb();
  SubgraphMinerOptions options;
  options.min_support = 0.3;
  options.max_edges = 4;
  auto mined = MineFrequentSubgraphs(db, options);
  std::vector<Graph> set = FrequentSubgraphPatternSet(mined, 6, 1, 4);
  EXPECT_LE(set.size(), 6u);
  for (const Graph& p : set) {
    EXPECT_GE(p.NumEdges(), 1u);
    EXPECT_LE(p.NumEdges(), 4u);
  }
}

TEST(FrequentEdgesTest, RankingIsDescending) {
  GraphDatabase db = MakeSmallDb();
  auto ranked = RankEdgesBySupport(db);
  ASSERT_GE(ranked.size(), 2u);
  for (size_t i = 1; i < ranked.size(); ++i) {
    EXPECT_GE(ranked[i - 1].support, ranked[i].support);
  }
}

TEST(FrequentEdgesTest, TopPatternsAreEdges) {
  GraphDatabase db = MakeSmallDb();
  auto patterns = TopFrequentEdgePatterns(db, 2);
  ASSERT_EQ(patterns.size(), 2u);
  for (const Graph& p : patterns) {
    EXPECT_EQ(p.NumVertices(), 2u);
    EXPECT_EQ(p.NumEdges(), 1u);
  }
}

TEST(FrequentEdgesTest, BasicPatternsIncludePaths) {
  GraphDatabase db = MakeSmallDb();
  auto basics = TopBasicPatterns(db, 10);
  EXPECT_FALSE(basics.empty());
  bool has_two_path = false;
  for (const Graph& p : basics) {
    EXPECT_LE(p.NumEdges(), 2u);
    if (p.NumEdges() == 2) has_two_path = true;
  }
  EXPECT_TRUE(has_two_path);
}

TEST(MinerIntegrationTest, MoleculeDatabaseMinesCleanly) {
  MoleculeGeneratorOptions gen;
  gen.num_graphs = 60;
  gen.seed = 5;
  GraphDatabase db = GenerateMoleculeDatabase(gen);
  SubtreeMinerOptions options;
  options.min_support = 0.3;
  options.max_edges = 2;
  auto mined = MineFrequentSubtrees(db, options);
  EXPECT_FALSE(mined.empty());
  for (const auto& fs : mined) {
    EXPECT_GE(fs.frequency, 0.3);
    EXPECT_TRUE(IsTree(fs.tree));
  }
}

}  // namespace
}  // namespace catapult
