#include "src/csg/csg.h"

#include <gtest/gtest.h>

#include "src/data/molecule_generator.h"
#include "src/graph/algorithms.h"
#include "src/iso/vf2.h"

namespace catapult {
namespace {

// Recreates the running example of Figure 4: graphs over labels C, O, S, N,
// P sharing a common C-O-S triangle-ish core.
GraphDatabase Figure4Database() {
  GraphDatabase db;
  Label C = db.labels().Intern("C");
  Label O = db.labels().Intern("O");
  Label S = db.labels().Intern("S");
  Label N = db.labels().Intern("N");
  // G1: C-O, C-S, O-S triangle.
  {
    Graph g;
    VertexId c = g.AddVertex(C);
    VertexId o = g.AddVertex(O);
    VertexId s = g.AddVertex(S);
    g.AddEdge(c, o);
    g.AddEdge(c, s);
    g.AddEdge(o, s);
    db.Add(std::move(g));
  }
  // G2: same triangle plus N attached to C.
  {
    Graph g;
    VertexId c = g.AddVertex(C);
    VertexId o = g.AddVertex(O);
    VertexId s = g.AddVertex(S);
    VertexId n = g.AddVertex(N);
    g.AddEdge(c, o);
    g.AddEdge(c, s);
    g.AddEdge(o, s);
    g.AddEdge(c, n);
    db.Add(std::move(g));
  }
  return db;
}

TEST(CsgTest, ClosureOfTwoGraphs) {
  GraphDatabase db = Figure4Database();
  ClusterSummaryGraph csg = BuildCsg(db, {0, 1});
  // The closure should have 4 vertices (C, O, S, N) and 4 edges; the
  // triangle edges supported by both graphs, C-N by graph 1 only.
  EXPECT_EQ(csg.NumVertices(), 4u);
  EXPECT_EQ(csg.NumEdges(), 4u);
  size_t both = 0;
  size_t single = 0;
  for (const auto& e : csg.edges()) {
    if (e.support.Count() == 2) ++both;
    if (e.support.Count() == 1) ++single;
  }
  EXPECT_EQ(both, 3u);
  EXPECT_EQ(single, 1u);
}

TEST(CsgTest, MembersAreSubgraphsOfSummary) {
  GraphDatabase db = Figure4Database();
  ClusterSummaryGraph csg = BuildCsg(db, {0, 1});
  Graph summary = csg.ToGraph();
  for (GraphId id : {GraphId{0}, GraphId{1}}) {
    EXPECT_TRUE(ContainsSubgraph(db.graph(id), summary))
        << "member " << id << " must embed into its cluster summary";
  }
}

TEST(CsgTest, IdenticalGraphsCollapse) {
  GraphDatabase db;
  Label C = db.labels().Intern("C");
  for (int i = 0; i < 5; ++i) {
    Graph g;
    g.AddVertex(C);
    g.AddVertex(C);
    g.AddVertex(C);
    g.AddEdge(0, 1);
    g.AddEdge(1, 2);
    db.Add(std::move(g));
  }
  ClusterSummaryGraph csg = BuildCsg(db, {0, 1, 2, 3, 4});
  EXPECT_EQ(csg.NumVertices(), 3u);
  EXPECT_EQ(csg.NumEdges(), 2u);
  for (const auto& e : csg.edges()) EXPECT_EQ(e.support.Count(), 5u);
  EXPECT_DOUBLE_EQ(csg.Compactness(1.0), 1.0);
}

TEST(CsgTest, CompactnessThresholds) {
  GraphDatabase db = Figure4Database();
  ClusterSummaryGraph csg = BuildCsg(db, {0, 1});
  // 3 of 4 edges occur in 100% of members, 1 in 50%.
  EXPECT_DOUBLE_EQ(csg.Compactness(1.0), 0.75);
  EXPECT_DOUBLE_EQ(csg.Compactness(0.5), 1.0);
}

TEST(CsgTest, EmptyCluster) {
  GraphDatabase db = Figure4Database();
  ClusterSummaryGraph csg = BuildCsg(db, {});
  EXPECT_EQ(csg.NumVertices(), 0u);
  EXPECT_EQ(csg.NumEdges(), 0u);
  EXPECT_DOUBLE_EQ(csg.Compactness(0.5), 0.0);
}

TEST(CsgTest, VertexSupportTracksMembers) {
  GraphDatabase db = Figure4Database();
  ClusterSummaryGraph csg = BuildCsg(db, {0, 1});
  // Find the N vertex: supported only by member 1.
  Label N = db.labels().Find("N");
  bool found = false;
  for (VertexId v = 0; v < csg.NumVertices(); ++v) {
    if (csg.VertexLabel(v) == N) {
      found = true;
      EXPECT_EQ(csg.VertexSupport(v).Count(), 1u);
      EXPECT_TRUE(csg.VertexSupport(v).Test(1));
    }
  }
  EXPECT_TRUE(found);
}

TEST(CsgTest, FindEdgeSymmetric) {
  GraphDatabase db = Figure4Database();
  // G2's summary: triangle C-O-S plus N attached to C only.
  ClusterSummaryGraph csg = BuildCsg(db, {1});
  ASSERT_GE(csg.NumEdges(), 1u);
  const auto& e = csg.edges()[0];
  EXPECT_EQ(csg.FindEdge(e.u, e.v), 0);
  EXPECT_EQ(csg.FindEdge(e.v, e.u), 0);
  // N-O is not an edge of G2.
  Label N = db.labels().Find("N");
  Label O = db.labels().Find("O");
  VertexId vn = 0;
  VertexId vo = 0;
  for (VertexId v = 0; v < csg.NumVertices(); ++v) {
    if (csg.VertexLabel(v) == N) vn = v;
    if (csg.VertexLabel(v) == O) vo = v;
  }
  EXPECT_EQ(csg.FindEdge(vn, vo), -1);
}

TEST(CsgTest, SummaryStaysSmallForSimilarGraphs) {
  // 10 near-identical molecule graphs from one scaffold family should
  // produce a summary much smaller than the sum of the parts.
  MoleculeGeneratorOptions gen;
  gen.num_graphs = 10;
  gen.scaffold_families = 1;
  gen.min_vertices = 8;
  gen.max_vertices = 12;
  gen.seed = 21;
  GraphDatabase db = GenerateMoleculeDatabase(gen);
  std::vector<GraphId> all;
  size_t total_vertices = 0;
  for (GraphId i = 0; i < db.size(); ++i) {
    all.push_back(i);
    total_vertices += db.graph(i).NumVertices();
  }
  ClusterSummaryGraph csg = BuildCsg(db, all);
  EXPECT_LT(csg.NumVertices(), total_vertices / 2);
}

TEST(CsgTest, BuildCsgsOnePerCluster) {
  GraphDatabase db = Figure4Database();
  auto csgs = BuildCsgs(db, {{0}, {1}, {0, 1}});
  ASSERT_EQ(csgs.size(), 3u);
  EXPECT_EQ(csgs[0].cluster_size(), 1u);
  EXPECT_EQ(csgs[2].cluster_size(), 2u);
}

}  // namespace
}  // namespace catapult
