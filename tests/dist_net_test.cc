// Chaos suite for network-transparent sharded execution (DESIGN.md §14):
// the address parser and socket channel, the handshake/assignment frame
// codecs, the membership registry's generation fencing, and — the
// acceptance bar — that a sharded run over real sockets (Unix-domain and
// TCP loopback) survives every injected network fault (connection refused,
// short writes, mid-frame drops, duplicated delivery, SIGKILLed workers,
// heartbeat-stalled zombies, total fleet loss) while producing a selection
// bit-identical to the in-process run, down to the checkpoint bytes.

#include <gtest/gtest.h>

#include <algorithm>
#include <csignal>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "src/core/catapult.h"
#include "src/data/molecule_generator.h"
#include "src/dist/channel.h"
#include "src/dist/net_worker.h"
#include "src/dist/registry.h"
#include "src/dist/wire.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/persist/checkpoint.h"
#include "src/persist/codec.h"
#include "src/persist/record_io.h"
#include "src/util/backoff.h"
#include "src/util/failpoint.h"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/wait.h>
#include <unistd.h>
#define CATAPULT_NET_TEST_POSIX 1
#endif

namespace catapult {
namespace {

// --- address parsing --------------------------------------------------------

TEST(DistNetAddressTest, ParsesUnixAndTcpForms) {
  dist::Address addr;
  std::string error;
  ASSERT_TRUE(dist::ParseAddress("unix:/tmp/x.sock", &addr, &error)) << error;
  EXPECT_EQ(addr.kind, dist::Address::Kind::kUnix);
  EXPECT_EQ(addr.path, "/tmp/x.sock");
  EXPECT_EQ(addr.text, "unix:/tmp/x.sock");

  ASSERT_TRUE(dist::ParseAddress("tcp:127.0.0.1:8041", &addr, &error));
  EXPECT_EQ(addr.kind, dist::Address::Kind::kTcp);
  EXPECT_EQ(addr.host, "127.0.0.1");
  EXPECT_EQ(addr.port, 8041);

  ASSERT_TRUE(dist::ParseAddress("tcp:localhost:0", &addr, &error));
  EXPECT_EQ(addr.port, 0);  // kernel-assigned (listeners only)
}

TEST(DistNetAddressTest, RejectsMalformedAddresses) {
  dist::Address addr;
  std::string error;
  for (const char* bad :
       {"", "unix:", "tcp:", "tcp:127.0.0.1", "tcp:127.0.0.1:notaport",
        "tcp:127.0.0.1:99999", "udp:127.0.0.1:80", "just-a-path"}) {
    error.clear();
    EXPECT_FALSE(dist::ParseAddress(bad, &addr, &error)) << bad;
    EXPECT_NE(error, "") << bad;
  }
}

// --- handshake / assignment frame codecs ------------------------------------

TEST(DistNetWireTest, HandshakeFramesRoundTrip) {
  {
    dist::JoinRequestFrame in;
    in.protocol = 7;
    in.fingerprint = 0xabcdef0102030405ull;
    in.shard_namespace = "shards";
    in.worker_name = "rack12/worker3";
    in.prev_worker_id = 4;
    in.prev_generation = 9;
    in.pid = 31337;
    dist::JoinRequestFrame out;
    ASSERT_TRUE(dist::Decode(dist::Encode(in), &out));
    EXPECT_EQ(out.protocol, in.protocol);
    EXPECT_EQ(out.fingerprint, in.fingerprint);
    EXPECT_EQ(out.shard_namespace, in.shard_namespace);
    EXPECT_EQ(out.worker_name, in.worker_name);
    EXPECT_EQ(out.prev_worker_id, 4u);
    EXPECT_EQ(out.prev_generation, 9u);
    EXPECT_EQ(out.pid, 31337u);
  }
  {
    dist::JoinAcceptFrame in{3, 2, 125.0, 500.0};
    dist::JoinAcceptFrame out;
    ASSERT_TRUE(dist::Decode(dist::Encode(in), &out));
    EXPECT_EQ(out.worker_id, 3u);
    EXPECT_EQ(out.generation, 2u);
    EXPECT_EQ(out.heartbeat_interval_ms, 125.0);
    EXPECT_EQ(out.heartbeat_timeout_ms, 500.0);
  }
  {
    dist::JoinRejectFrame in{
        static_cast<uint32_t>(dist::JoinRejectCode::kFingerprintMismatch),
        "fingerprint 0xdead != 0xbeef"};
    dist::JoinRejectFrame out;
    ASSERT_TRUE(dist::Decode(dist::Encode(in), &out));
    EXPECT_EQ(out.code, in.code);
    EXPECT_EQ(out.message, in.message);
  }
  {
    dist::ShutdownFrame in{static_cast<uint32_t>(dist::ShutdownCode::kFenced),
                           "stale generation"};
    dist::ShutdownFrame out;
    ASSERT_TRUE(dist::Decode(dist::Encode(in), &out));
    EXPECT_EQ(out.code, in.code);
    EXPECT_EQ(out.message, "stale generation");
  }
}

TEST(DistNetWireTest, ShardAssignRoundTripsClustersAndStreams) {
  dist::ShardAssignFrame in;
  in.shard = 2;
  in.attempt = 1;
  in.generation = 5;
  in.fine_enabled = true;
  in.fine_max_cluster_size = 10;
  in.mcs_connected = true;
  in.mcs_match_edge_labels = false;
  in.mcs_node_budget = 3000;
  in.deadline_remaining_ms = 1234.5;
  in.mem_soft_limit_bytes = 1 << 20;
  in.mem_hard_limit_bytes = 2 << 20;
  in.trace_id = 0xfeedface12345678ull;
  in.parent_span_id = 42;
  dist::ClusterWork a;
  a.index = 0;
  a.members = {3, 1, 4, 1, 5};
  a.stream = RngState{{1, 2, 3, 4}};
  dist::ClusterWork b;
  b.index = 7;
  b.members = {9};
  b.stream = RngState{{5, 6, 7, 8}};
  in.clusters = {a, b};

  dist::ShardAssignFrame out;
  ASSERT_TRUE(dist::Decode(dist::Encode(in), &out));
  EXPECT_EQ(out.shard, 2u);
  EXPECT_EQ(out.generation, 5u);
  EXPECT_EQ(out.deadline_remaining_ms, 1234.5);
  EXPECT_EQ(out.mem_hard_limit_bytes, 2u << 20);
  EXPECT_EQ(out.trace_id, 0xfeedface12345678ull);
  EXPECT_EQ(out.parent_span_id, 42u);
  ASSERT_EQ(out.clusters.size(), 2u);
  EXPECT_EQ(out.clusters[0].members, a.members);
  EXPECT_EQ(out.clusters[0].stream.words, a.stream.words);
  EXPECT_EQ(out.clusters[1].index, 7u);
  EXPECT_EQ(out.clusters[1].stream.words, b.stream.words);
}

TEST(DistNetWireTest, ShardAssignRejectsCorruptCountsAndDeadStreams) {
  dist::ShardAssignFrame frame;
  frame.shard = 1;
  frame.fine_enabled = true;
  dist::ClusterWork work;
  work.index = 0;
  work.members = {1, 2};
  work.stream = RngState{{1, 2, 3, 4}};
  frame.clusters = {work};
  std::string good = dist::Encode(frame);

  // Truncation at every prefix: never a crash, never a huge allocation.
  for (size_t len = 0; len < good.size(); ++len) {
    dist::ShardAssignFrame out;
    EXPECT_FALSE(dist::Decode(good.substr(0, len), &out)) << len;
  }

  // A fine-enabled cluster with an all-zero rng stream is the xoshiro
  // absorbing state — corruption, not a usable work order.
  frame.clusters[0].stream = RngState{{0, 0, 0, 0}};
  dist::ShardAssignFrame out;
  EXPECT_FALSE(dist::Decode(dist::Encode(frame), &out));
}

TEST(DistNetWireTest, ClusterResultRoundTripsPayloadBytes) {
  dist::ClusterResultFrame in;
  in.shard = 3;
  in.generation = 2;
  in.cluster_index = 11;
  in.payload = std::string("\x00\x01\x02binary\xff payload", 20);
  dist::ClusterResultFrame out;
  ASSERT_TRUE(dist::Decode(dist::Encode(in), &out));
  EXPECT_EQ(out.shard, 3u);
  EXPECT_EQ(out.generation, 2u);
  EXPECT_EQ(out.cluster_index, 11u);
  EXPECT_EQ(out.payload, in.payload);
}

TEST(DistNetWireTest, ShardDoneRoundTripsTraceContextAndSpans) {
  dist::ShardDoneFrame in;
  in.shard = 1;
  in.clusters_done = 3;
  in.counters.assign(obs::kNumCounters, 0);
  in.counters[static_cast<size_t>(obs::Counter::kVf2Calls)] = 17;
  in.trace_id = 0x1122334455667788ull;
  obs::SpanRecord root;
  root.name = "worker.shard";
  root.start_ns = 0;
  root.dur_ns = 5000;
  root.span_id = 1;
  root.parent_id = 0;
  root.tid = 0;
  obs::SpanRecord child;
  child.name = "cluster-7";
  child.start_ns = 1000;
  child.dur_ns = 2000;
  child.span_id = 2;
  child.parent_id = 1;
  child.tid = 1;
  child.counter_deltas = {{obs::Counter::kVf2Calls, 17}};
  in.spans = {root, child};

  const std::string bytes = dist::Encode(in);
  dist::ShardDoneFrame out;
  ASSERT_TRUE(dist::Decode(bytes, &out));
  EXPECT_EQ(out.shard, 1u);
  EXPECT_EQ(out.clusters_done, 3u);
  EXPECT_EQ(out.trace_id, in.trace_id);
  ASSERT_EQ(out.spans.size(), 2u);
  EXPECT_EQ(out.spans[0].name, "worker.shard");
  EXPECT_EQ(out.spans[0].dur_ns, 5000u);
  EXPECT_EQ(out.spans[1].name, "cluster-7");
  EXPECT_EQ(out.spans[1].parent_id, 1u);
  EXPECT_EQ(out.spans[1].tid, 1u);
  ASSERT_EQ(out.spans[1].counter_deltas.size(), 1u);
  EXPECT_EQ(out.spans[1].counter_deltas[0].first, obs::Counter::kVf2Calls);
  EXPECT_EQ(out.spans[1].counter_deltas[0].second, 17u);

  // Truncation at every prefix: never a crash, never a huge allocation.
  for (size_t len = 0; len < bytes.size(); ++len) {
    dist::ShardDoneFrame trunc;
    EXPECT_FALSE(dist::Decode(bytes.substr(0, len), &trunc)) << len;
  }

  // A hostile span count (claiming more spans than the payload could hold)
  // is rejected before any allocation.
  dist::ShardDoneFrame empty;
  empty.counters.assign(obs::kNumCounters, 0);
  std::string small = dist::Encode(empty);
  // Flip the span-count field (last 8 bytes of the no-span encoding) to a
  // huge value; the decoder's payload-size bound must reject it.
  for (size_t i = small.size() - 8; i < small.size(); ++i) small[i] = '\xff';
  dist::ShardDoneFrame bad;
  EXPECT_FALSE(dist::Decode(small, &bad));

  // A counter delta naming an out-of-range counter index is corruption.
  dist::ShardDoneFrame bad_delta = in;
  bad_delta.spans[1].counter_deltas = {
      {static_cast<obs::Counter>(obs::kNumCounters + 5), 1}};
  dist::ShardDoneFrame decoded;
  EXPECT_FALSE(dist::Decode(dist::Encode(bad_delta), &decoded));
}

TEST(DistNetWireTest, NewFrameTypesAcceptedByReader) {
  dist::FrameReader reader;
  std::string stream =
      dist::EncodeFrame(dist::FrameType::kJoinRequest,
                        dist::Encode(dist::JoinRequestFrame{})) +
      dist::EncodeFrame(dist::FrameType::kShutdown,
                        dist::Encode(dist::ShutdownFrame{1, "done"}));
  reader.Feed(stream.data(), stream.size());
  auto join = reader.Next();
  ASSERT_TRUE(join.has_value());
  EXPECT_EQ(join->type, dist::FrameType::kJoinRequest);
  auto shutdown = reader.Next();
  ASSERT_TRUE(shutdown.has_value());
  EXPECT_EQ(shutdown->type, dist::FrameType::kShutdown);
  EXPECT_FALSE(reader.corrupt());
}

// --- reconnect backoff semantics --------------------------------------------

// The reconnect schedule is a pure function of the consecutive-failure
// count: a worker that fences and rejoins twice replays the same delays in
// both generations, and the cap bounds how long a flapping fleet waits.
TEST(BackoffReconnectTest, ReconnectScheduleIsDeterministicAcrossGenerations) {
  ExponentialBackoff backoff(50.0, 1000.0);
  std::vector<double> generation1, generation2;
  for (size_t failures = 0; failures <= 8; ++failures) {
    generation1.push_back(backoff.DelayMs(failures));
  }
  ExponentialBackoff replay(50.0, 1000.0);
  for (size_t failures = 0; failures <= 8; ++failures) {
    generation2.push_back(replay.DelayMs(failures));
  }
  EXPECT_EQ(generation1, generation2);
  EXPECT_EQ(generation1[0], 0.0);  // a fresh join never waits
  EXPECT_EQ(generation1[1], 50.0);
  EXPECT_EQ(generation1[2], 100.0);
  EXPECT_EQ(generation1[8], 1000.0);  // capped
}

TEST(BackoffReconnectTest, SuccessfulJoinResetsTheSchedule) {
  // RunRemoteWorker zeroes its failure count on every accepted handshake;
  // the schedule after a reset is the schedule of a fresh worker.
  ExponentialBackoff backoff(50.0, 1000.0);
  size_t failures = 5;
  EXPECT_EQ(backoff.DelayMs(failures), 800.0);
  failures = 0;  // JoinAccept
  EXPECT_EQ(backoff.DelayMs(failures), 0.0);
  EXPECT_EQ(backoff.DelayMs(failures + 1), 50.0);
}

// --- membership registry ----------------------------------------------------

TEST(WorkerRegistryTest, FreshJoinsMintSequentialMembers) {
  dist::WorkerRegistry registry;
  auto now = dist::WorkerRegistry::Clock::now();
  auto a = registry.Join(0, 0, now);
  auto b = registry.Join(0, 0, now);
  EXPECT_EQ(a.worker_id, 1u);
  EXPECT_EQ(b.worker_id, 2u);
  EXPECT_EQ(a.generation, 1u);
  EXPECT_FALSE(a.reconnect);
  EXPECT_EQ(registry.alive(), 2u);
  EXPECT_TRUE(registry.IsCurrent(1, 1));
  EXPECT_FALSE(registry.IsCurrent(1, 2));  // future generation
  EXPECT_FALSE(registry.IsCurrent(3, 1));  // unknown member
}

TEST(WorkerRegistryTest, FencingRetiresTheGenerationUntilRejoin) {
  dist::WorkerRegistry registry;
  auto now = dist::WorkerRegistry::Clock::now();
  auto a = registry.Join(0, 0, now);
  registry.MarkDead(a.worker_id, now);
  registry.MarkDead(a.worker_id, now);  // idempotent
  EXPECT_FALSE(registry.IsCurrent(a.worker_id, a.generation));
  EXPECT_EQ(registry.alive(), 0u);

  // Rejoin with the fenced identity: same member, bumped generation.
  auto re = registry.Join(a.worker_id, a.generation,
                          now + std::chrono::milliseconds(80));
  EXPECT_TRUE(re.reconnect);
  EXPECT_EQ(re.worker_id, a.worker_id);
  EXPECT_EQ(re.generation, a.generation + 1);
  EXPECT_GE(re.down_ms, 80.0);
  EXPECT_TRUE(registry.IsCurrent(re.worker_id, re.generation));
  // The zombie's old generation stays fenced forever.
  EXPECT_FALSE(registry.IsCurrent(a.worker_id, a.generation));
  EXPECT_EQ(registry.total(), 1u);
}

TEST(WorkerRegistryTest, StaleIdentityMintsAFreshMember) {
  dist::WorkerRegistry registry;
  auto now = dist::WorkerRegistry::Clock::now();
  auto a = registry.Join(0, 0, now);
  // A generation the registry never issued (e.g. from a previous run)
  // cannot resurrect member 1 — it gets a brand-new identity instead.
  auto stranger = registry.Join(a.worker_id, a.generation + 7, now);
  EXPECT_FALSE(stranger.reconnect);
  EXPECT_EQ(stranger.worker_id, 2u);
  EXPECT_EQ(stranger.generation, 1u);
  // An unknown worker id likewise.
  auto unknown = registry.Join(99, 1, now);
  EXPECT_FALSE(unknown.reconnect);
  EXPECT_EQ(unknown.worker_id, 3u);
}

TEST(WorkerRegistryTest, AliveRejoinFencesTheOldConnectionFirst) {
  // A worker that reconnects before the supervisor noticed the old
  // connection die: the rejoin itself retires the old generation.
  dist::WorkerRegistry registry;
  auto now = dist::WorkerRegistry::Clock::now();
  auto a = registry.Join(0, 0, now);
  auto re = registry.Join(a.worker_id, a.generation, now);
  EXPECT_TRUE(re.reconnect);
  EXPECT_EQ(re.generation, a.generation + 1);
  EXPECT_FALSE(registry.IsCurrent(a.worker_id, a.generation));
  EXPECT_TRUE(registry.IsCurrent(re.worker_id, re.generation));
}

#if defined(CATAPULT_NET_TEST_POSIX)

// --- socket channel ---------------------------------------------------------

class DistNetChannelTest : public ::testing::Test {
 protected:
  void TearDown() override { failpoint::DisarmAll(); }

  std::string ScratchDir(const std::string& name) {
    std::string dir = ::testing::TempDir() + "catapult_net_" +
                      ::testing::UnitTest::GetInstance()
                          ->current_test_info()
                          ->name() +
                      "_" + name;
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    return dir;
  }

  // Blocks (bounded) until the listener yields a connection.
  int AcceptOne(dist::Listener& listener) {
    for (int spin = 0; spin < 2000; ++spin) {
      int fd = listener.Accept();
      if (fd >= 0) return fd;
      ::usleep(1000);
    }
    return -1;
  }

  // Drains `channel` until one frame is complete or the budget runs out.
  std::optional<dist::Frame> ReadOne(dist::Channel& channel,
                                     dist::FrameReader& reader) {
    for (int spin = 0; spin < 2000; ++spin) {
      if (auto frame = reader.Next()) return frame;
      auto status = channel.DrainInto(&reader);
      if (status == dist::Channel::DrainStatus::kError) return std::nullopt;
      if (status == dist::Channel::DrainStatus::kEof) return reader.Next();
      ::usleep(1000);
    }
    return std::nullopt;
  }
};

TEST_F(DistNetChannelTest, UnixRoundTripBothDirections) {
  std::string path = ScratchDir("uds") + "/s.sock";
  dist::Address addr;
  std::string error;
  ASSERT_TRUE(dist::ParseAddress("unix:" + path, &addr, &error));

  dist::Listener listener;
  ASSERT_EQ(listener.Listen(addr), "");
  EXPECT_EQ(listener.address(), "unix:" + path);

  int client_fd = dist::Dial(addr, 1000.0, &error);
  ASSERT_GE(client_fd, 0) << error;
  dist::Channel client(client_fd);
  int server_fd = AcceptOne(listener);
  ASSERT_GE(server_fd, 0);
  dist::Channel server(server_fd);

  ASSERT_TRUE(client.Send(dist::HeartbeatFrame{1, 2, 3},
                          dist::FrameType::kHeartbeat));
  dist::FrameReader server_reader;
  auto got = ReadOne(server, server_reader);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->type, dist::FrameType::kHeartbeat);

  ASSERT_TRUE(server.Send(dist::ShutdownFrame{1, "bye"},
                          dist::FrameType::kShutdown));
  dist::FrameReader client_reader;
  auto reply = ReadOne(client, client_reader);
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->type, dist::FrameType::kShutdown);

  // Closing the server surfaces EOF, not an error, on the client.
  server.Close();
  for (int spin = 0; spin < 2000; ++spin) {
    auto status = client.DrainInto(&client_reader);
    if (status == dist::Channel::DrainStatus::kEof) break;
    ASSERT_NE(status, dist::Channel::DrainStatus::kError);
    ::usleep(1000);
  }
}

TEST_F(DistNetChannelTest, TcpPortZeroResolvesAndRoundTrips) {
  dist::Address addr;
  std::string error;
  ASSERT_TRUE(dist::ParseAddress("tcp:127.0.0.1:0", &addr, &error));
  dist::Listener listener;
  ASSERT_EQ(listener.Listen(addr), "");
  // The kernel-assigned port is reflected in the canonical address.
  EXPECT_EQ(listener.address().rfind("tcp:127.0.0.1:", 0), 0u);
  EXPECT_NE(listener.address(), "tcp:127.0.0.1:0");

  dist::Address resolved;
  ASSERT_TRUE(dist::ParseAddress(listener.address(), &resolved, &error));
  int client_fd = dist::Dial(resolved, 1000.0, &error);
  ASSERT_GE(client_fd, 0) << error;
  dist::Channel client(client_fd);
  int server_fd = AcceptOne(listener);
  ASSERT_GE(server_fd, 0);
  dist::Channel server(server_fd);

  ASSERT_TRUE(client.Send(dist::HelloFrame{9, 1, 42},
                          dist::FrameType::kHello));
  dist::FrameReader reader;
  auto got = ReadOne(server, reader);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->type, dist::FrameType::kHello);
}

TEST_F(DistNetChannelTest, ShortWritesStillDeliverWholeFrames) {
  std::string path = ScratchDir("short") + "/s.sock";
  dist::Address addr;
  std::string error;
  ASSERT_TRUE(dist::ParseAddress("unix:" + path, &addr, &error));
  dist::Listener listener;
  ASSERT_EQ(listener.Listen(addr), "");
  int client_fd = dist::Dial(addr, 1000.0, &error);
  ASSERT_GE(client_fd, 0) << error;
  dist::Channel client(client_fd);
  dist::Channel server(AcceptOne(listener));

  failpoint::Arm(dist::kFailpointShortWrite, -1);  // 1-byte kernel writes
  dist::ShardErrorFrame payload{4, "short-write stress payload"};
  ASSERT_TRUE(client.Send(payload, dist::FrameType::kShardError));
  failpoint::DisarmAll();

  dist::FrameReader reader;
  auto got = ReadOne(server, reader);
  ASSERT_TRUE(got.has_value());
  dist::ShardErrorFrame out;
  ASSERT_TRUE(dist::Decode(got->payload, &out));
  EXPECT_EQ(out.message, payload.message);
  EXPECT_FALSE(reader.corrupt());
}

TEST_F(DistNetChannelTest, WriteStallFailsTheChannelNotTheProcess) {
  std::string path = ScratchDir("stall") + "/s.sock";
  dist::Address addr;
  std::string error;
  ASSERT_TRUE(dist::ParseAddress("unix:" + path, &addr, &error));
  dist::Listener listener;
  ASSERT_EQ(listener.Listen(addr), "");
  int client_fd = dist::Dial(addr, 1000.0, &error);
  ASSERT_GE(client_fd, 0) << error;
  dist::Channel client(client_fd, /*write_stall_timeout_ms=*/50.0);

  failpoint::Arm(dist::kFailpointWriteStall, 1);
  EXPECT_FALSE(client.Send(dist::HeartbeatFrame{1, 1, 0},
                           dist::FrameType::kHeartbeat));
  EXPECT_TRUE(client.write_stalled());
  EXPECT_TRUE(client.failed());
  // Failed channels no-op further sends instead of crashing.
  EXPECT_FALSE(client.Send(dist::HeartbeatFrame{1, 2, 0},
                           dist::FrameType::kHeartbeat));
}

TEST_F(DistNetChannelTest, DialFailuresReportNotCrash) {
  dist::Address addr;
  std::string error;
  ASSERT_TRUE(
      dist::ParseAddress("unix:/nonexistent/dir/s.sock", &addr, &error));
  EXPECT_LT(dist::Dial(addr, 200.0, &error), 0);
  EXPECT_NE(error, "");

  // The injected connection-refused fault fires before any syscall.
  ASSERT_TRUE(dist::ParseAddress("tcp:127.0.0.1:1", &addr, &error));
  failpoint::Arm(dist::kFailpointConnectRefused, 1);
  EXPECT_LT(dist::Dial(addr, 200.0, &error), 0);
  EXPECT_NE(error.find("refused"), std::string::npos) << error;
}

// --- end-to-end: remote fleet chaos matrix ----------------------------------

GraphDatabase NetDb(uint64_t seed = 31, size_t n = 36) {
  MoleculeGeneratorOptions gen;
  gen.num_graphs = n;
  gen.min_vertices = 8;
  gen.max_vertices = 14;
  gen.seed = seed;
  return GenerateMoleculeDatabase(gen);
}

CatapultOptions NetBaseOptions() {
  CatapultOptions options;
  options.selector.budget.eta_min = 3;
  options.selector.budget.eta_max = 6;
  options.selector.budget.gamma = 6;
  options.selector.walks_per_candidate = 8;
  options.clustering.max_cluster_size = 10;
  options.clustering.fine_mcs.node_budget = 3000;
  options.seed = 99;
  return options;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  return bytes;
}

std::string EncodeCsgBytes(const ClusterSummaryGraph& csg) {
  persist::BinaryWriter w;
  persist::EncodeCsg(csg, w);
  return w.TakeBuffer();
}

void ExpectSameResult(const CatapultResult& expected,
                      const CatapultResult& actual) {
  ASSERT_EQ(expected.clusters, actual.clusters);
  ASSERT_EQ(expected.csgs.size(), actual.csgs.size());
  for (size_t i = 0; i < expected.csgs.size(); ++i) {
    EXPECT_EQ(EncodeCsgBytes(expected.csgs[i]), EncodeCsgBytes(actual.csgs[i]))
        << "csg " << i;
  }
  ASSERT_EQ(expected.selection.patterns.size(),
            actual.selection.patterns.size());
  for (size_t i = 0; i < expected.selection.patterns.size(); ++i) {
    const SelectedPattern& a = expected.selection.patterns[i];
    const SelectedPattern& b = actual.selection.patterns[i];
    EXPECT_EQ(a.graph.DebugString(), b.graph.DebugString()) << "pattern " << i;
    EXPECT_EQ(a.score, b.score) << "pattern " << i;
  }
}

bool HasEvent(const std::vector<dist::ShardEvent>& events,
              dist::ShardEvent::Kind kind) {
  for (const dist::ShardEvent& e : events) {
    if (e.kind == kind) return true;
  }
  return false;
}

class DistNetFleetTest : public DistNetChannelTest {
 protected:
  void SetUp() override {
    db_ = NetDb();
    base_ = NetBaseOptions();
    expected_ = RunCatapult(db_, base_);
    ASSERT_TRUE(expected_.ok());
    fingerprint_ = ConfigFingerprint(base_, db_);
  }

  void TearDown() override {
    for (pid_t pid : workers_) {
      ::kill(pid, SIGKILL);
      int status = 0;
      ::waitpid(pid, &status, 0);
    }
    workers_.clear();
    DistNetChannelTest::TearDown();
  }

  // Sharded-over-sockets variant of base_ with test-friendly timings.
  CatapultOptions FleetOptions(size_t processes) {
    CatapultOptions options = base_;
    options.processes = processes;
    options.shard_backoff_base_ms = 5.0;
    options.shard_backoff_cap_ms = 40.0;
    return options;
  }

  dist::RemoteWorkerOptions WorkerOpts(const std::string& address) {
    dist::RemoteWorkerOptions w;
    w.address = address;
    w.fingerprint = fingerprint_;
    w.dial_backoff_base_ms = 5.0;
    w.dial_backoff_cap_ms = 100.0;
    // Generous: the supervisor only starts listening once the coarse
    // clustering phase finishes, and workers are forked before the run.
    w.max_dial_attempts = 200;
    return w;
  }

  // Forks a remote worker. The child re-arms its own failpoints (fork
  // inherits the parent's tables) and must _exit: no gtest teardown, no
  // atexit handlers in the child.
  pid_t SpawnWorker(const dist::RemoteWorkerOptions& opts,
                    std::function<void()> arm = nullptr) {
    pid_t pid = ::fork();
    if (pid == 0) {
      failpoint::DisarmAll();
      if (arm) arm();
      ::_exit(dist::RunRemoteWorker(db_, opts));
    }
    workers_.push_back(pid);
    return pid;
  }

  int WaitWorker(pid_t pid) {
    int status = 0;
    ::waitpid(pid, &status, 0);
    workers_.erase(std::find(workers_.begin(), workers_.end(), pid));
    if (WIFEXITED(status)) return WEXITSTATUS(status);
    if (WIFSIGNALED(status)) return 128 + WTERMSIG(status);
    return -1;
  }

  GraphDatabase db_;
  CatapultOptions base_;
  CatapultResult expected_;
  uint64_t fingerprint_ = 0;
  std::vector<pid_t> workers_;
};

TEST_F(DistNetFleetTest, UnixSocketRunMatchesInProcessDownToCheckpoints) {
  std::string dir = ScratchDir("uds");
  std::string dir_classic = ScratchDir("uds_classic");

  CatapultOptions classic = base_;
  classic.checkpoint_dir = dir_classic;
  CatapultResult expected = RunCatapult(db_, classic);
  ASSERT_TRUE(expected.ok());

  // The supervisor binds the socket itself here (the Listen path); the
  // workers ride out the connect-refused window under dial backoff.
  CatapultOptions options = FleetOptions(2);
  options.dist_listen = "unix:" + dir + "/sup.sock";
  options.checkpoint_dir = dir + "/ckpt";
  std::filesystem::create_directories(options.checkpoint_dir);
  pid_t w1 = SpawnWorker(WorkerOpts(options.dist_listen));
  pid_t w2 = SpawnWorker(WorkerOpts(options.dist_listen));

  CatapultResult actual = RunCatapult(db_, options);
  ASSERT_TRUE(actual.ok());
  EXPECT_EQ(WaitWorker(w1), 0);
  EXPECT_EQ(WaitWorker(w2), 0);
  ExpectSameResult(expected, actual);

  const dist::DistReport& d = actual.execution.dist;
  EXPECT_TRUE(d.remote);
  EXPECT_EQ(d.listen_address, options.dist_listen);
  EXPECT_GE(d.workers_joined, 1u);
  EXPECT_GT(d.remote_clusters, 0u);
  EXPECT_EQ(d.fleet_lost_fallbacks, 0u);
  EXPECT_FALSE(d.remote_fallback_only);
  EXPECT_TRUE(HasEvent(d.events, dist::ShardEvent::Kind::kWorkerJoined));
  EXPECT_TRUE(HasEvent(d.events, dist::ShardEvent::Kind::kShardAssigned));

  // The durable artifacts are the strongest identity witness: the remote
  // run's checkpoints must be byte-identical to the in-process run's.
  for (persist::RecordType type :
       {persist::RecordType::kClustering, persist::RecordType::kCsgs,
        persist::RecordType::kSelection}) {
    std::string classic_bytes = ReadFileBytes(
        dir_classic + "/" + CheckpointStore::FileNameFor(type));
    std::string remote_bytes = ReadFileBytes(
        options.checkpoint_dir + "/" + CheckpointStore::FileNameFor(type));
    ASSERT_FALSE(classic_bytes.empty());
    EXPECT_EQ(classic_bytes, remote_bytes)
        << "checkpoint " << CheckpointStore::FileNameFor(type);
  }
}

TEST_F(DistNetFleetTest, TcpLoopbackRunMatchesInProcess) {
  // Tests bind port 0 themselves to learn the real address, then hand the
  // listening fd to the supervisor (the Adopt path).
  dist::Address addr;
  std::string error;
  ASSERT_TRUE(dist::ParseAddress("tcp:127.0.0.1:0", &addr, &error));
  dist::Listener listener;
  ASSERT_EQ(listener.Listen(addr), "");

  CatapultOptions options = FleetOptions(2);
  options.dist_listen_fd = listener.fd();
  pid_t w1 = SpawnWorker(WorkerOpts(listener.address()));
  pid_t w2 = SpawnWorker(WorkerOpts(listener.address()));

  CatapultResult actual = RunCatapult(db_, options);
  ASSERT_TRUE(actual.ok());
  EXPECT_EQ(WaitWorker(w1), 0);
  EXPECT_EQ(WaitWorker(w2), 0);
  ExpectSameResult(expected_, actual);
  EXPECT_TRUE(actual.execution.dist.remote);
  EXPECT_GT(actual.execution.dist.remote_clusters, 0u);
}

TEST_F(DistNetFleetTest, ConnectionRefusedRetriesUnderBackoff) {
  std::string dir = ScratchDir("refused");
  CatapultOptions options = FleetOptions(2);
  options.dist_listen = "unix:" + dir + "/sup.sock";
  // The worker's first three dials fail before any syscall; the capped
  // backoff schedule carries it to a successful join.
  pid_t w = SpawnWorker(WorkerOpts(options.dist_listen), [] {
    failpoint::Arm(dist::kFailpointConnectRefused, 3);
  });
  CatapultResult actual = RunCatapult(db_, options);
  ASSERT_TRUE(actual.ok());
  EXPECT_EQ(WaitWorker(w), 0);
  ExpectSameResult(expected_, actual);
  EXPECT_GE(actual.execution.dist.workers_joined, 1u);
  EXPECT_GT(actual.execution.dist.remote_clusters, 0u);
}

TEST_F(DistNetFleetTest, ShortWritesEverywhereStayBitIdentical) {
  std::string dir = ScratchDir("short");
  CatapultOptions options = FleetOptions(2);
  options.dist_listen = "unix:" + dir + "/sup.sock";
  // Every worker-side send dribbles one byte per syscall: framing must
  // reassemble regardless of kernel write chunking.
  pid_t w = SpawnWorker(WorkerOpts(options.dist_listen), [] {
    failpoint::Arm(dist::kFailpointShortWrite, -1);
  });
  CatapultResult actual = RunCatapult(db_, options);
  ASSERT_TRUE(actual.ok());
  EXPECT_EQ(WaitWorker(w), 0);
  ExpectSameResult(expected_, actual);
  EXPECT_GT(actual.execution.dist.remote_clusters, 0u);
}

TEST_F(DistNetFleetTest, MidFrameDropFencesAndReassigns) {
  std::string dir = ScratchDir("drop");
  CatapultOptions options = FleetOptions(2);
  options.dist_listen = "unix:" + dir + "/sup.sock";
  // The worker truncates its first result frame halfway and drops the
  // connection — the classic mid-write death. The supervisor must fence
  // the connection (truncated frame = dead peer, not corruption), requeue
  // the shard, and accept the worker's rejoin at a bumped generation.
  pid_t w = SpawnWorker(WorkerOpts(options.dist_listen), [] {
    failpoint::Arm(dist::kFailpointDropMidFrame, 1);
  });
  CatapultResult actual = RunCatapult(db_, options);
  ASSERT_TRUE(actual.ok());
  EXPECT_EQ(WaitWorker(w), 0);
  ExpectSameResult(expected_, actual);
  const dist::DistReport& d = actual.execution.dist;
  EXPECT_GE(d.reconnects, 1u);
  EXPECT_GE(d.worker_deaths, 1u);
  EXPECT_TRUE(HasEvent(d.events, dist::ShardEvent::Kind::kWorkerFenced));
  EXPECT_TRUE(HasEvent(d.events, dist::ShardEvent::Kind::kWorkerReconnected));
}

TEST_F(DistNetFleetTest, DuplicatedDeliveryIsCountedAndIgnored) {
  std::string dir = ScratchDir("dup");
  CatapultOptions options = FleetOptions(2);
  options.dist_listen = "unix:" + dir + "/sup.sock";
  // Every cluster result is sent twice (at-least-once delivery); the
  // supervisor must apply each exactly once.
  pid_t w = SpawnWorker(WorkerOpts(options.dist_listen), [] {
    failpoint::Arm(dist::kFailpointDupClusterResult, -1);
  });
  CatapultResult actual = RunCatapult(db_, options);
  ASSERT_TRUE(actual.ok());
  EXPECT_EQ(WaitWorker(w), 0);
  ExpectSameResult(expected_, actual);
  EXPECT_GE(actual.execution.dist.duplicate_clusters, 1u);
}

// --- cross-process trace propagation (DESIGN.md §16) ------------------------

// Counts non-overlapping occurrences of `needle` in `hay`.
size_t CountOccurrences(const std::string& hay, const std::string& needle) {
  size_t count = 0;
  for (size_t pos = hay.find(needle); pos != std::string::npos;
       pos = hay.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

// The merge invariant every chaos variant below re-asserts: each shard's
// worker spans appear AT MOST once in the merged trace (duplicated or
// fenced deliveries never double-merge), merged shards sit on their own
// named process track under a supervisor-side shard span, and at least
// `min_merged_shards` shards contributed a tree. A shard whose span buffer
// died with a SIGKILLed worker before shipping is legitimately absent —
// lost, not duplicated.
void ExpectMergedTraceInvariants(const obs::Tracer& tracer, size_t shards,
                                 size_t min_merged_shards) {
  const std::string json = tracer.ToJson();
  EXPECT_NE(json.find("\"traceId\""), std::string::npos);
  size_t merged_shards = 0;
  for (size_t s = 0; s < shards; ++s) {
    const std::string tag = std::to_string(s);
    const size_t sup =
        CountOccurrences(json, "\"name\":\"dist.shard-" + tag + "\"");
    const size_t roots =
        CountOccurrences(json, "\"name\":\"worker.shard-" + tag + "\"");
    EXPECT_LE(sup, 1u) << json.substr(0, 2000);
    EXPECT_LE(roots, 1u) << json.substr(0, 2000);
    // A merged shard has both halves and a named process track; an unmerged
    // shard has neither (no orphaned supervisor spans either way).
    EXPECT_EQ(sup, roots) << "shard " << s;
    EXPECT_EQ(CountOccurrences(json, "\"catapult shard " + tag + "\""), roots);
    merged_shards += roots;
  }
  EXPECT_GE(merged_shards, min_merged_shards);
}

TEST_F(DistNetFleetTest, RemoteFleetMergesWorkerSpansIntoOneTrace) {
  std::string dir = ScratchDir("trace");
  CatapultOptions options = FleetOptions(2);
  options.dist_listen = "unix:" + dir + "/sup.sock";
  pid_t w1 = SpawnWorker(WorkerOpts(options.dist_listen));
  pid_t w2 = SpawnWorker(WorkerOpts(options.dist_listen));

  obs::MetricsRegistry registry;
  obs::Tracer tracer;
  RunContext ctx = RunContext::NoLimit().WithObservability(&registry, &tracer);
  CatapultResult actual = RunCatapult(db_, options, ctx);
  ASSERT_TRUE(actual.ok());
  EXPECT_EQ(WaitWorker(w1), 0);
  EXPECT_EQ(WaitWorker(w2), 0);
  ExpectSameResult(expected_, actual);  // tracing changes nothing

  ASSERT_GT(actual.execution.dist.shards, 0u);
  ExpectMergedTraceInvariants(tracer, actual.execution.dist.shards,
                              actual.execution.dist.shards);
  EXPECT_NE(tracer.trace_id(), 0u);
  obs::MetricsSnapshot snap = registry.Snapshot();
  EXPECT_GT(snap.counter(obs::Counter::kObsSpansMerged), 0u);
  EXPECT_EQ(snap.counter(obs::Counter::kObsSpansDropped), 0u);
}

TEST_F(DistNetFleetTest, DuplicatedShardDoneMergesSpansExactlyOnce) {
  std::string dir = ScratchDir("dupdone");
  CatapultOptions options = FleetOptions(2);
  options.dist_listen = "unix:" + dir + "/sup.sock";
  // Every shard-completion frame is delivered twice; the supervisor must
  // merge each shard's span buffer exactly once.
  pid_t w = SpawnWorker(WorkerOpts(options.dist_listen), [] {
    failpoint::Arm(dist::kFailpointDupShardDone, -1);
    failpoint::Arm(dist::kFailpointDupClusterResult, -1);
  });
  obs::MetricsRegistry registry;
  obs::Tracer tracer;
  RunContext ctx = RunContext::NoLimit().WithObservability(&registry, &tracer);
  CatapultResult actual = RunCatapult(db_, options, ctx);
  ASSERT_TRUE(actual.ok());
  EXPECT_EQ(WaitWorker(w), 0);
  ExpectSameResult(expected_, actual);
  ExpectMergedTraceInvariants(tracer, actual.execution.dist.shards,
                              actual.execution.dist.shards);
}

TEST_F(DistNetFleetTest, SigkilledWorkerRetryLeavesNoDuplicateSpans) {
  std::string dir = ScratchDir("killtrace");
  CatapultOptions options = FleetOptions(2);
  options.dist_listen = "unix:" + dir + "/sup.sock";
  // The victim dies mid-shard (its span buffer dies with it, never
  // shipped); the survivor recarries the shard and ships its own buffer.
  // The merged trace must hold exactly one span tree per shard — no
  // orphans from the dead attempt, no duplicates from the retry.
  pid_t victim = SpawnWorker(WorkerOpts(options.dist_listen), [] {
    failpoint::Arm(dist::kFailpointKillAfterFirstResult, 1);
  });
  pid_t survivor = SpawnWorker(WorkerOpts(options.dist_listen));
  obs::MetricsRegistry registry;
  obs::Tracer tracer;
  RunContext ctx = RunContext::NoLimit().WithObservability(&registry, &tracer);
  CatapultResult actual = RunCatapult(db_, options, ctx);
  ASSERT_TRUE(actual.ok());
  EXPECT_EQ(WaitWorker(victim), 128 + SIGKILL);
  EXPECT_EQ(WaitWorker(survivor), 0);
  ExpectSameResult(expected_, actual);
  EXPECT_GE(actual.execution.dist.worker_deaths, 1u);
  ExpectMergedTraceInvariants(tracer, actual.execution.dist.shards,
                              /*min_merged_shards=*/1);
}

TEST_F(DistNetFleetTest, FencedZombieFramesNeverPolluteTheTrace) {
  std::string dir = ScratchDir("zombietrace");
  CatapultOptions options = FleetOptions(2);
  options.dist_listen = "unix:" + dir + "/sup.sock";
  options.shard_heartbeat_timeout_ms = 250.0;
  options.shard_backoff_base_ms = 500.0;
  options.shard_backoff_cap_ms = 2000.0;
  // Same zombie arrangement as the fencing test above, now with tracing:
  // the zombie's late frames arrive from a retired generation and must be
  // discarded before they can inject spans; the rejoined worker's second
  // attempt supplies the shard's single span tree.
  dist::RemoteWorkerOptions wopts = WorkerOpts(options.dist_listen);
  wopts.stall_test_ms = 1500.0;
  pid_t w = SpawnWorker(wopts, [] {
    failpoint::Arm(dist::kFailpointDelayHeartbeat, 1);
    failpoint::Arm(dist::kFailpointStallBeforeResult, 1);
  });
  obs::MetricsRegistry registry;
  obs::Tracer tracer;
  RunContext ctx = RunContext::NoLimit().WithObservability(&registry, &tracer);
  CatapultResult actual = RunCatapult(db_, options, ctx);
  ASSERT_TRUE(actual.ok());
  EXPECT_EQ(WaitWorker(w), 0);
  ExpectSameResult(expected_, actual);
  EXPECT_GE(actual.execution.dist.fenced_frames, 1u);
  ExpectMergedTraceInvariants(tracer, actual.execution.dist.shards,
                              actual.execution.dist.shards);
}

TEST_F(DistNetFleetTest, SigkilledWorkerShardReassignedToSurvivor) {
  std::string dir = ScratchDir("kill");
  CatapultOptions options = FleetOptions(2);
  options.dist_listen = "unix:" + dir + "/sup.sock";
  // Worker A dies by SIGKILL right after shipping its first cluster
  // result; worker B must absorb the orphaned shard — resuming from the
  // already-persisted cluster, not recomputing it.
  pid_t victim = SpawnWorker(WorkerOpts(options.dist_listen), [] {
    failpoint::Arm(dist::kFailpointKillAfterFirstResult, 1);
  });
  pid_t survivor = SpawnWorker(WorkerOpts(options.dist_listen));
  CatapultResult actual = RunCatapult(db_, options);
  ASSERT_TRUE(actual.ok());
  EXPECT_EQ(WaitWorker(victim), 128 + SIGKILL);
  EXPECT_EQ(WaitWorker(survivor), 0);
  ExpectSameResult(expected_, actual);
  const dist::DistReport& d = actual.execution.dist;
  EXPECT_GE(d.worker_deaths, 1u);
  EXPECT_TRUE(HasEvent(d.events, dist::ShardEvent::Kind::kWorkerFenced));
  EXPECT_EQ(d.fleet_lost_fallbacks, 0u);
}

TEST_F(DistNetFleetTest, HeartbeatStalledZombieIsFencedFramesDiscarded) {
  std::string dir = ScratchDir("zombie");
  CatapultOptions options = FleetOptions(2);
  options.dist_listen = "unix:" + dir + "/sup.sock";
  options.shard_heartbeat_timeout_ms = 250.0;
  // Shard retries must wait long enough for the zombie's late frames to
  // arrive while the supervisor is still running.
  options.shard_backoff_base_ms = 500.0;
  options.shard_backoff_cap_ms = 2000.0;
  // The worker's heartbeat thread oversleeps 2.5x the timeout while the
  // main thread stalls 1.5s before shipping its first result: by then the
  // supervisor has fenced the connection, so the result arrives from a
  // retired generation — counted, never applied — and the worker rejoins.
  dist::RemoteWorkerOptions wopts = WorkerOpts(options.dist_listen);
  wopts.stall_test_ms = 1500.0;
  pid_t w = SpawnWorker(wopts, [] {
    failpoint::Arm(dist::kFailpointDelayHeartbeat, 1);
    failpoint::Arm(dist::kFailpointStallBeforeResult, 1);
  });
  CatapultResult actual = RunCatapult(db_, options);
  ASSERT_TRUE(actual.ok());
  EXPECT_EQ(WaitWorker(w), 0);
  ExpectSameResult(expected_, actual);
  const dist::DistReport& d = actual.execution.dist;
  EXPECT_GE(d.worker_hangs, 1u);
  EXPECT_GE(d.fenced_frames, 1u);
  EXPECT_GE(d.reconnects, 1u);
  EXPECT_TRUE(HasEvent(d.events, dist::ShardEvent::Kind::kWorkerFenced));
  EXPECT_TRUE(HasEvent(d.events, dist::ShardEvent::Kind::kWorkerReconnected));
}

TEST_F(DistNetFleetTest, FleetNeverFormsFallsBackInProcess) {
  std::string dir = ScratchDir("lost");
  CatapultOptions options = FleetOptions(2);
  options.dist_listen = "unix:" + dir + "/sup.sock";
  options.dist_join_timeout_ms = 300.0;  // don't wait the default 10s
  // No worker ever dials: the run must complete via the in-process
  // fallback ladder, bit-identical, and flag itself for the CLI's exit 7.
  CatapultResult actual = RunCatapult(db_, options);
  ASSERT_TRUE(actual.ok());
  ExpectSameResult(expected_, actual);
  const dist::DistReport& d = actual.execution.dist;
  EXPECT_GT(d.fleet_lost_fallbacks, 0u);
  EXPECT_EQ(d.remote_clusters, 0u);
  EXPECT_TRUE(d.remote_fallback_only);
  EXPECT_EQ(d.inprocess_fallbacks, d.shards);
  EXPECT_TRUE(HasEvent(d.events, dist::ShardEvent::Kind::kFleetLost));
  EXPECT_TRUE(HasEvent(d.events, dist::ShardEvent::Kind::kInProcessFallback));
}

TEST_F(DistNetFleetTest, HandshakeMismatchesRejectedWithTypedCodes) {
  std::string dir = ScratchDir("reject");
  CatapultOptions options = FleetOptions(2);
  options.dist_listen = "unix:" + dir + "/sup.sock";
  options.dist_join_timeout_ms = 2000.0;

  dist::RemoteWorkerOptions skewed_build = WorkerOpts(options.dist_listen);
  skewed_build.protocol = dist::kDistProtocolVersion + 1;
  dist::RemoteWorkerOptions wrong_db = WorkerOpts(options.dist_listen);
  wrong_db.fingerprint = fingerprint_ ^ 0xdeadbeef;
  dist::RemoteWorkerOptions wrong_ns = WorkerOpts(options.dist_listen);
  wrong_ns.shard_namespace = "not-shards";

  pid_t p1 = SpawnWorker(skewed_build);
  pid_t p2 = SpawnWorker(wrong_db);
  pid_t p3 = SpawnWorker(wrong_ns);
  CatapultResult actual = RunCatapult(db_, options);
  ASSERT_TRUE(actual.ok());
  // Rejected workers exit with the dedicated handshake-refused code.
  EXPECT_EQ(WaitWorker(p1), dist::kWorkerExitRejected);
  EXPECT_EQ(WaitWorker(p2), dist::kWorkerExitRejected);
  EXPECT_EQ(WaitWorker(p3), dist::kWorkerExitRejected);
  // A fleet of misfits is no fleet at all: the run still completes
  // bit-identically via the fallback ladder.
  ExpectSameResult(expected_, actual);
  const dist::DistReport& d = actual.execution.dist;
  EXPECT_EQ(d.workers_rejected, 3u);
  EXPECT_EQ(d.workers_joined, 0u);
  EXPECT_TRUE(d.remote_fallback_only);
  EXPECT_TRUE(HasEvent(d.events, dist::ShardEvent::Kind::kWorkerRejected));
}

TEST_F(DistNetFleetTest, WorkerExhaustsDialBudgetWithDistinctExitCode) {
  dist::RemoteWorkerOptions opts =
      WorkerOpts("unix:" + ScratchDir("nobody") + "/never.sock");
  opts.max_dial_attempts = 3;
  pid_t w = SpawnWorker(opts);
  EXPECT_EQ(WaitWorker(w), dist::kWorkerExitConnectFailed);
}

TEST_F(DistNetFleetTest, ListenOptionsValidated) {
  CatapultOptions options = base_;
  options.dist_listen = "unix:/tmp/x.sock";  // but processes == 1
  CatapultResult result = RunCatapult(db_, options);
  ASSERT_FALSE(result.ok());
  ASSERT_FALSE(result.option_errors.empty());
  EXPECT_EQ(result.option_errors[0].field, "dist_listen");

  CatapultOptions both = FleetOptions(2);
  both.dist_listen = "unix:/tmp/x.sock";
  both.dist_listen_fd = 7;  // mutually exclusive
  EXPECT_FALSE(RunCatapult(db_, both).ok());

  CatapultOptions bad_addr = FleetOptions(2);
  bad_addr.dist_listen = "carrier-pigeon:coop7";
  CatapultResult unparsed = RunCatapult(db_, bad_addr);
  // An unparseable address cannot be validated structurally (the listener
  // reports it), but the run must degrade to fallback, not crash.
  if (unparsed.ok()) {
    EXPECT_TRUE(unparsed.execution.dist.remote_fallback_only);
  }
}

#endif  // CATAPULT_NET_TEST_POSIX

}  // namespace
}  // namespace catapult
