// Executable-witness property: a FormulationPlan, when executed against an
// empty canvas, reconstructs a graph isomorphic to the query. This closes
// the loop on the whole step model - if the plan under-counted or
// mis-ordered steps, the reconstruction would diverge.

#include <gtest/gtest.h>

#include "src/data/molecule_generator.h"
#include "src/data/query_generator.h"
#include "src/formulate/session.h"
#include "src/graph/algorithms.h"
#include "src/iso/vf2.h"

namespace catapult {
namespace {

// Executes `plan` on an empty canvas and returns the constructed graph.
// Pattern placements instantiate the pattern's vertices/edges at the query
// positions given by the cover's embeddings; relabel steps apply the
// query's labels; add steps copy vertices/edges verbatim.
Graph ExecutePlan(const FormulationPlan& plan, const Graph& query,
                  const GuiModel& gui) {
  // canvas vertex id == query vertex id (we allocate lazily).
  std::vector<int> canvas_id(query.NumVertices(), -1);
  Graph canvas;
  auto EnsureVertex = [&](VertexId qv, Label label) {
    if (canvas_id[qv] < 0) {
      canvas_id[qv] = static_cast<int>(canvas.AddVertex(label));
    }
    return static_cast<VertexId>(canvas_id[qv]);
  };

  size_t use_index = 0;
  for (const FormulationStep& step : plan.steps) {
    switch (step.kind) {
      case FormulationStep::Kind::kPlacePattern: {
        const PatternUse& use = plan.cover.uses[use_index++];
        const Graph& p = gui.patterns[use.pattern_index];
        for (VertexId pv = 0; pv < p.NumVertices(); ++pv) {
          // Unlabelled panels drop their placeholder label onto the canvas;
          // labelled panels place the real label.
          EnsureVertex(use.embedding[pv], p.VertexLabel(pv));
        }
        for (const Edge& pe : p.EdgeList()) {
          VertexId u = static_cast<VertexId>(canvas_id[use.embedding[pe.u]]);
          VertexId v = static_cast<VertexId>(canvas_id[use.embedding[pe.v]]);
          if (!canvas.HasEdge(u, v)) canvas.AddEdge(u, v);
        }
        break;
      }
      case FormulationStep::Kind::kAddVertex:
        EnsureVertex(step.u, query.VertexLabel(step.u));
        break;
      case FormulationStep::Kind::kAddEdge: {
        VertexId u = EnsureVertex(step.u, query.VertexLabel(step.u));
        VertexId v = EnsureVertex(step.v, query.VertexLabel(step.v));
        if (!canvas.HasEdge(u, v)) canvas.AddEdge(u, v);
        break;
      }
      case FormulationStep::Kind::kRelabelVertex: {
        VertexId u = EnsureVertex(step.u, query.VertexLabel(step.u));
        canvas.SetVertexLabel(u, query.VertexLabel(step.u));
        break;
      }
    }
  }
  return canvas;
}

class PlanExecutionProperty : public ::testing::TestWithParam<int> {};

TEST_P(PlanExecutionProperty, PlanReconstructsQueryWithMinedPanel) {
  uint64_t seed = static_cast<uint64_t>(GetParam());
  MoleculeGeneratorOptions gen;
  gen.num_graphs = 25;
  gen.scaffold_families = 1 + seed % 6;
  gen.seed = 100 + seed;
  GraphDatabase db = GenerateMoleculeDatabase(gen);

  // Panel: a few real substructures of the data (always labelled).
  Rng rng(200 + seed);
  std::vector<Graph> patterns;
  for (int i = 0; i < 3; ++i) {
    Graph p = RandomConnectedSubgraph(
        db.graph(static_cast<GraphId>(rng.UniformInt(db.size()))),
        3 + rng.UniformInt(3), rng);
    if (p.NumEdges() >= 2) patterns.push_back(std::move(p));
  }
  GuiModel gui = MakeCatapultGui(patterns);

  QueryWorkloadOptions wl;
  wl.count = 3;
  wl.min_edges = 5;
  wl.max_edges = 14;
  wl.seed = 300 + seed;
  for (const Graph& query : GenerateQueryWorkload(db, wl)) {
    FormulationPlan plan = PlanFormulation(query, gui);
    Graph rebuilt = ExecutePlan(plan, query, gui);
    ASSERT_EQ(rebuilt.NumVertices(), query.NumVertices());
    ASSERT_EQ(rebuilt.NumEdges(), query.NumEdges());
    EXPECT_TRUE(AreIsomorphic(rebuilt, query))
        << "plan did not rebuild the query (seed " << seed << ")";
  }
}

TEST_P(PlanExecutionProperty, PlanReconstructsQueryWithUnlabelledPanel) {
  uint64_t seed = static_cast<uint64_t>(GetParam());
  MoleculeGeneratorOptions gen;
  gen.num_graphs = 15;
  gen.seed = 400 + seed;
  GraphDatabase db = GenerateMoleculeDatabase(gen);
  GuiModel gui = MakePubChemGui(db.labels().Intern("C"));

  QueryWorkloadOptions wl;
  wl.count = 2;
  wl.min_edges = 6;
  wl.max_edges = 12;
  wl.seed = 500 + seed;
  for (const Graph& query : GenerateQueryWorkload(db, wl)) {
    FormulationPlan plan = PlanFormulation(query, gui);
    Graph rebuilt = ExecutePlan(plan, query, gui);
    // Relabel steps are part of the plan for unlabelled panels, so the
    // rebuilt canvas must carry the query's true labels.
    ASSERT_EQ(rebuilt.NumVertices(), query.NumVertices());
    ASSERT_EQ(rebuilt.NumEdges(), query.NumEdges());
    EXPECT_TRUE(AreIsomorphic(rebuilt, query));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlanExecutionProperty,
                         ::testing::Range(0, 12));

}  // namespace
}  // namespace catapult
