// Tests for the Psi_dist size-distribution extension (Section 5 remark).

#include <gtest/gtest.h>

#include <numeric>

#include "src/core/budget.h"
#include "src/core/selector.h"
#include "src/csg/csg.h"
#include "src/data/molecule_generator.h"

namespace catapult {
namespace {

TEST(PerSizeCapsTest, UniformWhenUnset) {
  PatternBudget b{.eta_min = 3, .eta_max = 5, .gamma = 9};
  std::vector<size_t> caps = b.PerSizeCaps();
  EXPECT_EQ(caps, (std::vector<size_t>{3, 3, 3}));
}

TEST(PerSizeCapsTest, ProportionalApportionment) {
  PatternBudget b{.eta_min = 3, .eta_max = 5, .gamma = 10};
  b.size_distribution = {1.0, 1.0, 3.0};
  std::vector<size_t> caps = b.PerSizeCaps();
  ASSERT_EQ(caps.size(), 3u);
  EXPECT_EQ(std::accumulate(caps.begin(), caps.end(), size_t{0}), 10u);
  EXPECT_EQ(caps[2], 6u);
  EXPECT_EQ(caps[0], 2u);
  EXPECT_EQ(caps[1], 2u);
}

TEST(PerSizeCapsTest, ZeroWeightExcludesSize) {
  PatternBudget b{.eta_min = 3, .eta_max = 5, .gamma = 6};
  b.size_distribution = {1.0, 0.0, 1.0};
  std::vector<size_t> caps = b.PerSizeCaps();
  EXPECT_EQ(caps[1], 0u);
  EXPECT_EQ(caps[0] + caps[2], 6u);
}

TEST(PerSizeCapsTest, LargestRemainderSumsToGamma) {
  PatternBudget b{.eta_min = 3, .eta_max = 6, .gamma = 7};
  b.size_distribution = {1.0, 1.0, 1.0, 1.0};
  std::vector<size_t> caps = b.PerSizeCaps();
  EXPECT_EQ(std::accumulate(caps.begin(), caps.end(), size_t{0}), 7u);
}

TEST(OpenPatternSizesTest, ExcludedSizeNeverOpens) {
  PatternBudget b{.eta_min = 3, .eta_max = 5, .gamma = 6};
  b.size_distribution = {1.0, 0.0, 1.0};
  std::vector<size_t> open = OpenPatternSizes(b, {0, 0, 0});
  EXPECT_EQ(open, (std::vector<size_t>{3, 5}));
  // Even when everything else is capped, size 4 stays closed.
  open = OpenPatternSizes(b, {3, 0, 2});
  for (size_t s : open) EXPECT_NE(s, 4u);
}

TEST(SelectorWithDistTest, SkewedDistributionHolds) {
  MoleculeGeneratorOptions gen;
  gen.num_graphs = 50;
  gen.scaffold_families = 4;
  gen.seed = 71;
  GraphDatabase db = GenerateMoleculeDatabase(gen);
  std::vector<std::vector<GraphId>> clusters;
  for (GraphId start = 0; start < db.size(); start += 10) {
    std::vector<GraphId> cluster;
    for (GraphId i = start; i < start + 10; ++i) cluster.push_back(i);
    clusters.push_back(std::move(cluster));
  }
  auto csgs = BuildCsgs(db, clusters);

  SelectorOptions options;
  options.budget = {.eta_min = 3, .eta_max = 5, .gamma = 6};
  options.budget.size_distribution = {4.0, 1.0, 1.0};  // mostly size 3
  options.walks_per_candidate = 8;
  Rng rng(3);
  SelectionResult result =
      FindCannedPatternSet(db, clusters, csgs, options, rng);
  size_t size3 = 0;
  for (const SelectedPattern& p : result.patterns) {
    EXPECT_GE(p.graph.NumEdges(), 3u);
    EXPECT_LE(p.graph.NumEdges(), 5u);
    if (p.graph.NumEdges() == 3) ++size3;
  }
  // At least half of a full panel must be 3-edge patterns.
  if (result.patterns.size() >= 4) {
    EXPECT_GE(size3 * 2, result.patterns.size());
  }
}

TEST(BudgetValidateTest, RejectsWrongDistLength) {
  PatternBudget b{.eta_min = 3, .eta_max = 5, .gamma = 6};
  b.size_distribution = {1.0};
  EXPECT_DEATH(b.Validate(), "Psi_dist");
}

TEST(BudgetValidateTest, RejectsAllZeroDist) {
  PatternBudget b{.eta_min = 3, .eta_max = 4, .gamma = 6};
  b.size_distribution = {0.0, 0.0};
  EXPECT_DEATH(b.Validate(), "positive");
}

TEST(BudgetValidateTest, RejectsTinyEtaMin) {
  PatternBudget b{.eta_min = 2, .eta_max = 5, .gamma = 6};
  EXPECT_DEATH(b.Validate(), "eta_min");
}

}  // namespace
}  // namespace catapult
