#include <gtest/gtest.h>

#include "src/formulate/cover.h"
#include "src/formulate/evaluate.h"
#include "src/formulate/gui.h"
#include "src/formulate/qft.h"
#include "src/formulate/steps.h"
#include "src/graph/algorithms.h"

namespace catapult {
namespace {

Graph Ring(size_t n, Label label = 0) {
  Graph g;
  for (size_t i = 0; i < n; ++i) g.AddVertex(label);
  for (size_t i = 0; i < n; ++i) {
    g.AddEdge(static_cast<VertexId>(i), static_cast<VertexId>((i + 1) % n));
  }
  return g;
}

Graph Chain(size_t n, Label label = 0) {
  Graph g;
  for (size_t i = 0; i < n; ++i) g.AddVertex(label);
  for (size_t i = 0; i + 1 < n; ++i) {
    g.AddEdge(static_cast<VertexId>(i), static_cast<VertexId>(i + 1));
  }
  return g;
}

// Two disjoint triangles joined by a single bridge edge.
Graph TwoTriangles() {
  Graph g = Ring(3);
  VertexId a = g.AddVertex(0);
  VertexId b = g.AddVertex(0);
  VertexId c = g.AddVertex(0);
  g.AddEdge(a, b);
  g.AddEdge(b, c);
  g.AddEdge(c, a);
  g.AddEdge(0, a);
  return g;
}

TEST(CoverTest, SinglePatternCoversWholeQuery) {
  Graph query = Ring(5);
  QueryCover cover = MaxPatternCover(query, {Ring(5)});
  ASSERT_EQ(cover.uses.size(), 1u);
  EXPECT_EQ(cover.covered_vertices, 5u);
  EXPECT_EQ(cover.covered_edges, 5u);
}

TEST(CoverTest, PatternUsedTwiceOnDisjointRegions) {
  Graph query = TwoTriangles();
  QueryCover cover = MaxPatternCover(query, {Ring(3)});
  EXPECT_EQ(cover.uses.size(), 2u);
  EXPECT_EQ(cover.covered_vertices, 6u);
  EXPECT_EQ(cover.covered_edges, 6u);
}

TEST(CoverTest, OverlappingEmbeddingsConflict) {
  // A triangle query and a triangle pattern: only one use possible.
  QueryCover cover = MaxPatternCover(Ring(3), {Ring(3)});
  EXPECT_EQ(cover.uses.size(), 1u);
}

TEST(CoverTest, NoMatchingPattern) {
  QueryCover cover = MaxPatternCover(Chain(3), {Ring(3)});
  EXPECT_TRUE(cover.uses.empty());
  EXPECT_EQ(cover.covered_vertices, 0u);
}

TEST(CoverTest, PrefersLargerPattern) {
  Graph query = Ring(6);
  // Both C6 and an edge match; the 6-ring covers more.
  QueryCover cover = MaxPatternCover(query, {Chain(2), Ring(6)});
  ASSERT_GE(cover.uses.size(), 1u);
  EXPECT_EQ(cover.uses[0].pattern_index, 1u);
  EXPECT_EQ(cover.covered_vertices, 6u);
}

TEST(StepsTest, EdgeAtATime) {
  EXPECT_EQ(StepsEdgeAtATime(Ring(5)), 10u);
  EXPECT_EQ(StepsEdgeAtATime(Chain(4)), 7u);
}

TEST(StepsTest, FullCoverIsOneStep) {
  Graph query = Ring(5);
  std::vector<Graph> patterns = {Ring(5)};
  QueryCover cover = MaxPatternCover(query, patterns);
  EXPECT_EQ(StepsWithPatterns(query, patterns, cover, false), 1u);
}

TEST(StepsTest, PartialCoverAddsRemainder) {
  Graph query = TwoTriangles();  // 6 vertices, 7 edges
  std::vector<Graph> patterns = {Ring(3)};
  QueryCover cover = MaxPatternCover(query, patterns);
  // 2 pattern placements + 0 remaining vertices + 1 bridge edge.
  EXPECT_EQ(StepsWithPatterns(query, patterns, cover, false), 3u);
}

TEST(StepsTest, UnlabelledChargesRelabelling) {
  Graph query = Ring(5);
  std::vector<Graph> patterns = {Ring(5)};
  QueryCover cover = MaxPatternCover(query, patterns);
  // 1 placement + 5 relabels.
  EXPECT_EQ(StepsWithPatterns(query, patterns, cover, true), 6u);
}

TEST(StepsTest, ReductionRatio) {
  EXPECT_DOUBLE_EQ(ReductionRatio(10, 1), 0.9);
  EXPECT_DOUBLE_EQ(ReductionRatio(10, 10), 0.0);
  EXPECT_DOUBLE_EQ(ReductionRatio(0, 5), 0.0);
}

TEST(StepsTest, RelativeReduction) {
  EXPECT_DOUBLE_EQ(RelativeReduction(20, 5), 0.75);
  EXPECT_LT(RelativeReduction(5, 10), 0.0);  // baseline better -> negative
}

TEST(GuiTest, PubChemPanelShape) {
  GuiModel gui = MakePubChemGui(0);
  EXPECT_EQ(gui.patterns.size(), 12u);
  EXPECT_TRUE(gui.unlabelled);
  for (const Graph& p : gui.patterns) {
    EXPECT_GE(p.NumEdges(), 3u);
    EXPECT_LE(p.NumEdges(), 8u);
    EXPECT_TRUE(IsConnected(p));
  }
}

TEST(GuiTest, EMolPanelShape) {
  GuiModel gui = MakeEMolGui(0);
  EXPECT_EQ(gui.patterns.size(), 6u);
  for (const Graph& p : gui.patterns) {
    EXPECT_GE(p.NumEdges(), 3u);
    EXPECT_LE(p.NumEdges(), 8u);
  }
}

TEST(GuiTest, CatapultGuiIsLabelled) {
  GuiModel gui = MakeCatapultGui({Ring(3, 2)});
  EXPECT_FALSE(gui.unlabelled);
  EXPECT_EQ(gui.patterns.size(), 1u);
}

TEST(FormulateTest, LabelledPatternBeatsEdgeAtATime) {
  Graph query = Ring(6, 3);
  GuiModel gui = MakeCatapultGui({Ring(6, 3)});
  QueryFormulation f = FormulateQuery(query, gui);
  EXPECT_EQ(f.steps_patterns, 1u);
  EXPECT_GT(f.mu, 0.9);
}

TEST(FormulateTest, UnlabelledGuiPaysRelabelling) {
  Graph query = Ring(6, 3);  // query labelled 3 everywhere
  GuiModel unlabelled = MakePubChemGui(0);
  QueryFormulation f = FormulateQuery(query, unlabelled);
  // C6 matches after normalisation: 1 placement + 6 relabels = 7 steps.
  EXPECT_EQ(f.steps_patterns, 7u);
  EXPECT_GT(f.patterns_used, 0u);
}

TEST(FormulateTest, MismatchedLabelsUseNoPatterns) {
  Graph query = Ring(6, 3);
  GuiModel gui = MakeCatapultGui({Ring(6, 4)});  // wrong labels
  QueryFormulation f = FormulateQuery(query, gui);
  EXPECT_EQ(f.patterns_used, 0u);
  EXPECT_EQ(f.steps_patterns, StepsEdgeAtATime(query));
  EXPECT_DOUBLE_EQ(f.mu, 0.0);
}

TEST(EvaluateTest, WorkloadAggregates) {
  std::vector<Graph> queries = {Ring(6, 3), Ring(6, 3), Chain(4, 9)};
  GuiModel gui = MakeCatapultGui({Ring(6, 3)});
  std::vector<QueryFormulation> details;
  WorkloadReport report = EvaluateGui(queries, gui, {}, &details);
  EXPECT_EQ(report.num_queries, 3u);
  ASSERT_EQ(details.size(), 3u);
  // Two ring queries formulate in 1 step; the chain misses.
  EXPECT_NEAR(report.mp_percent, 100.0 / 3.0, 1e-9);
  EXPECT_GT(report.max_mu, 0.9);
}

TEST(EvaluateTest, SubgraphCoverage) {
  GraphDatabase db;
  db.Add(Ring(6, 1));
  db.Add(Ring(5, 1));
  db.Add(Chain(3, 2));
  double scov = SubgraphCoverage({Ring(5, 1)}, db);
  EXPECT_NEAR(scov, 1.0 / 3.0, 1e-9);  // only the C5 ring contains it
  double scov2 = SubgraphCoverage({Chain(3, 1)}, db);
  EXPECT_NEAR(scov2, 2.0 / 3.0, 1e-9);  // both rings contain a path
}

TEST(EvaluateTest, DiversityAndCogAverages) {
  std::vector<Graph> patterns = {Ring(3, 0), Chain(5, 0)};
  EXPECT_GT(AverageSetDiversity(patterns), 0.0);
  EXPECT_GT(AverageCognitiveLoad(patterns), 0.0);
  EXPECT_DOUBLE_EQ(AverageSetDiversity({Ring(3, 0)}), 0.0);
}

TEST(QftTest, MoreStepsTakeLonger) {
  QftModel model;
  model.noise_stddev = 0.0;
  GuiModel gui = MakeCatapultGui({Ring(6, 3)});
  Rng rng(1);
  double t_small = SimulateQft(Ring(6, 3), gui, model, rng);
  double t_large = SimulateQft(Ring(12, 3), gui, model, rng);
  EXPECT_LT(t_small, t_large);
}

TEST(QftTest, PatternGuiFasterThanNone) {
  QftModel model;
  model.noise_stddev = 0.0;
  Rng rng(2);
  Graph query = Ring(6, 3);
  double with_patterns =
      SimulateQft(query, MakeCatapultGui({Ring(6, 3)}), model, rng);
  double without =
      SimulateQft(query, MakeCatapultGui({}), model, rng);
  EXPECT_LT(with_patterns, without);
}

TEST(QftTest, AverageIsDeterministicGivenSeed) {
  QftModel model;
  GuiModel gui = MakeCatapultGui({Ring(6, 3)});
  Rng rng1(3);
  Rng rng2(3);
  EXPECT_DOUBLE_EQ(AverageQft(Ring(6, 3), gui, model, 5, rng1),
                   AverageQft(Ring(6, 3), gui, model, 5, rng2));
}

TEST(QftTest, DecisionTimeGrowsWithCognitiveLoad) {
  QftModel model;
  model.noise_stddev = 0.0;
  Rng rng(4);
  Graph sparse = Chain(6, 0);
  Graph dense;  // K4
  for (int i = 0; i < 4; ++i) dense.AddVertex(0);
  for (int i = 0; i < 4; ++i) {
    for (int j = i + 1; j < 4; ++j) {
      dense.AddEdge(static_cast<VertexId>(i), static_cast<VertexId>(j));
    }
  }
  EXPECT_LT(SimulateDecisionTime(sparse, model, rng),
            SimulateDecisionTime(dense, model, rng));
}

}  // namespace
}  // namespace catapult
