// Selection hot-path structures (DESIGN.md §15): the structure-of-arrays
// ScoreTable, the cross-iteration SelectorClassCache, the flat coverage
// kernel, the incremental diversity fold, and the end-to-end invariants the
// memoized selector must preserve — identical output with and without a
// prebuilt summary index, and recorded per-pattern diagnostics that replay
// against from-scratch recomputation.

#include "src/core/score_table.h"

#include <gtest/gtest.h>

#include <limits>

#include "src/core/catapult.h"
#include "src/core/pattern_score.h"
#include "src/core/selector.h"
#include "src/csg/csg.h"
#include "src/data/molecule_generator.h"
#include "src/graph/algorithms.h"
#include "src/iso/vf2.h"

namespace catapult {
namespace {

struct SelectorEnv {
  GraphDatabase db;
  std::vector<std::vector<GraphId>> clusters;
  std::vector<ClusterSummaryGraph> csgs;
};

SelectorEnv MakeSetup(size_t num_graphs = 60, uint64_t seed = 13) {
  SelectorEnv setup;
  MoleculeGeneratorOptions gen;
  gen.num_graphs = num_graphs;
  gen.min_vertices = 8;
  gen.max_vertices = 16;
  gen.scaffold_families = 4;
  gen.seed = seed;
  setup.db = GenerateMoleculeDatabase(gen);
  for (GraphId start = 0; start < setup.db.size(); start += 10) {
    std::vector<GraphId> cluster;
    for (GraphId i = start; i < std::min<GraphId>(start + 10, setup.db.size());
         ++i) {
      cluster.push_back(i);
    }
    setup.clusters.push_back(std::move(cluster));
  }
  setup.csgs = BuildCsgs(setup.db, setup.clusters);
  return setup;
}

// Structural equality of two graphs produced by identical runs: same vertex
// labels in order, same edge list in order.
bool SameGraph(const Graph& a, const Graph& b) {
  if (a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges()) {
    return false;
  }
  for (VertexId v = 0; v < a.NumVertices(); ++v) {
    if (a.VertexLabel(v) != b.VertexLabel(v)) return false;
  }
  std::vector<Edge> ea = a.EdgeList();
  std::vector<Edge> eb = b.EdgeList();
  for (size_t i = 0; i < ea.size(); ++i) {
    if (ea[i].u != eb[i].u || ea[i].v != eb[i].v ||
        ea[i].label != eb[i].label) {
      return false;
    }
  }
  return true;
}

// Random vertex-permuted copy of g.
Graph Permuted(const Graph& g, Rng& rng) {
  std::vector<VertexId> perm(g.NumVertices());
  for (size_t i = 0; i < perm.size(); ++i) perm[i] = static_cast<VertexId>(i);
  rng.Shuffle(perm);
  Graph out;
  std::vector<VertexId> new_id(g.NumVertices());
  for (VertexId v : perm) new_id[v] = out.AddVertex(g.VertexLabel(v));
  for (const Edge& e : g.EdgeList()) {
    out.AddEdge(new_id[e.u], new_id[e.v], e.label);
  }
  return out;
}

TEST(ScoreTableTest, ResetDimensionsAndZeroes) {
  ScoreTable table;
  table.Reset(5, 130);  // 130 csgs -> 3 coverage words
  EXPECT_EQ(table.size(), 5u);
  EXPECT_EQ(table.coverage_words(), 3u);
  table.score[4] = 2.0;
  table.valid[4] = 1;
  table.CoverageRow(4)[2] = ~uint64_t{0};
  table.cache_slot[4] = 7;
  table.div_min[4] = 0.5;

  // Shrinking then regrowing must hand back zeroed rows, not stale state.
  table.Reset(2, 130);
  table.Reset(5, 130);
  EXPECT_EQ(table.score[4], 0.0);
  EXPECT_EQ(table.valid[4], 0);
  EXPECT_EQ(table.CoverageRow(4)[2], 0u);
  EXPECT_EQ(table.cache_slot[4], -1);
  EXPECT_EQ(table.div_min[4], std::numeric_limits<double>::max());
}

TEST(ScoreTableTest, CoverageRowsDoNotOverlap) {
  ScoreTable table;
  table.Reset(3, 64);
  table.CoverageRow(1)[0] = 0xff;
  EXPECT_EQ(table.CoverageRow(0)[0], 0u);
  EXPECT_EQ(table.CoverageRow(2)[0], 0u);
}

TEST(SelectorClassCacheTest, ProbeFindsIsomorphicClass) {
  Rng rng(7);
  Graph base = RandomConnectedSubgraph(
      GenerateMoleculeDatabase({.num_graphs = 1, .seed = 3}).graph(0), 6, rng);
  uint64_t fp = GraphFingerprint(base);

  SelectorClassCache cache;
  EXPECT_EQ(cache.Probe(fp, base), -1);

  SelectorClassCache::Entry entry;
  entry.rep = base;
  entry.fingerprint = fp;
  entry.lcov = 0.25;
  int slot = cache.Insert(std::move(entry));
  EXPECT_EQ(slot, 0);
  EXPECT_EQ(cache.entries(), 1u);

  // The representative itself and a vertex-permuted copy both land on the
  // class; the fingerprint is isomorphism-invariant so the copy probes with
  // the same fp.
  EXPECT_EQ(cache.Probe(fp, base), 0);
  Graph shuffled = Permuted(base, rng);
  EXPECT_EQ(GraphFingerprint(shuffled), fp);
  EXPECT_EQ(cache.Probe(fp, shuffled), 0);

  // Write-back through At persists.
  cache.At(fp, slot).div_min = 3.0;
  EXPECT_EQ(cache.At(fp, slot).div_min, 3.0);

  cache.Clear();
  EXPECT_EQ(cache.entries(), 0u);
  EXPECT_EQ(cache.Probe(fp, base), -1);
}

TEST(SelectorClassCacheTest, SlotsStableAcrossInserts) {
  SelectorEnv setup = MakeSetup(20, 5);
  Rng rng(11);
  SelectorClassCache cache;
  std::vector<std::pair<uint64_t, int>> coords;
  std::vector<Graph> graphs;
  for (int i = 0; i < 12; ++i) {
    Graph g = RandomConnectedSubgraph(
        setup.db.graph(static_cast<GraphId>(i)), 4 + i % 4, rng);
    uint64_t fp = GraphFingerprint(g);
    if (cache.Probe(fp, g) >= 0) continue;
    SelectorClassCache::Entry entry;
    entry.rep = g;
    entry.fingerprint = fp;
    entry.cog = static_cast<double>(i);
    coords.emplace_back(fp, cache.Insert(std::move(entry)));
    graphs.push_back(g);
  }
  // Every recorded (fp, slot) coordinate still resolves to its graph after
  // all subsequent inserts.
  for (size_t i = 0; i < coords.size(); ++i) {
    const SelectorClassCache::Entry& e =
        cache.At(coords[i].first, coords[i].second);
    EXPECT_TRUE(AreIsomorphic(e.rep, graphs[i]));
  }
}

TEST(CoveredCsgsFlatTest, MatchesReferenceCoverage) {
  SelectorEnv setup = MakeSetup();
  FlatSummaryIndex index = BuildFlatSummaryIndex(setup.csgs);
  ASSERT_EQ(index.size(), setup.csgs.size());
  std::vector<Graph> summaries;
  for (const ClusterSummaryGraph& csg : setup.csgs) {
    summaries.push_back(csg.ToGraph());
  }
  Rng rng(3);
  for (int trial = 0; trial < 10; ++trial) {
    Graph pattern = RandomConnectedSubgraph(
        setup.db.graph(static_cast<GraphId>(trial * 5)), 3 + trial % 5, rng);
    for (uint64_t budget : {uint64_t{0}, uint64_t{50}, uint64_t{100000}}) {
      uint64_t ref_exhausted = 0;
      std::vector<bool> reference =
          CoveredCsgs(pattern, summaries, budget, &ref_exhausted);
      uint64_t flat_exhausted = 0;
      std::vector<uint64_t> words(CoverageWords(index.size()), 0);
      CoveredCsgsFlat(pattern, index, budget, &flat_exhausted, words.data());
      for (size_t i = 0; i < reference.size(); ++i) {
        bool flat_bit = (words[i >> 6] >> (i & 63)) & 1;
        EXPECT_EQ(flat_bit, reference[i])
            << "trial " << trial << " budget " << budget << " csg " << i;
      }
      EXPECT_EQ(flat_exhausted, ref_exhausted)
          << "trial " << trial << " budget " << budget;
    }
  }
}

TEST(FoldDiversityTest, FromScratchEqualsPatternSetDiversity) {
  SelectorEnv setup = MakeSetup(30, 9);
  Rng rng(17);
  std::vector<Graph> panel;
  for (int i = 0; i < 5; ++i) {
    panel.push_back(RandomConnectedSubgraph(
        setup.db.graph(static_cast<GraphId>(i * 3)), 3 + i, rng));
  }
  GedOptions ged;
  for (int trial = 0; trial < 8; ++trial) {
    Graph p = RandomConnectedSubgraph(
        setup.db.graph(static_cast<GraphId>(trial)), 4 + trial % 3, rng);
    double folded = FoldDiversity(p, panel, 0,
                                  std::numeric_limits<double>::max(), ged,
                                  /*approximate=*/false);
    EXPECT_EQ(folded, PatternSetDiversity(p, panel, ged));
    double folded_approx = FoldDiversity(
        p, panel, 0, std::numeric_limits<double>::max(), ged,
        /*approximate=*/true);
    EXPECT_EQ(folded_approx, PatternSetDiversityApprox(p, panel));
  }
}

TEST(FoldDiversityTest, IncrementalFoldEqualsFullFold) {
  SelectorEnv setup = MakeSetup(30, 9);
  Rng rng(23);
  std::vector<Graph> panel;
  for (int i = 0; i < 6; ++i) {
    panel.push_back(RandomConnectedSubgraph(
        setup.db.graph(static_cast<GraphId>(i * 2 + 1)), 3 + i % 4, rng));
  }
  GedOptions ged;
  Graph p = RandomConnectedSubgraph(setup.db.graph(20), 5, rng);
  double full = FoldDiversity(p, panel, 0,
                              std::numeric_limits<double>::max(), ged, false);
  // Folding a prefix, then continuing from its running minimum, must land on
  // the same value for every split point.
  for (size_t split = 0; split <= panel.size(); ++split) {
    std::vector<Graph> prefix(panel.begin(), panel.begin() + split);
    double carried = FoldDiversity(p, prefix, 0,
                                   std::numeric_limits<double>::max(), ged,
                                   false);
    double resumed = FoldDiversity(p, panel, split, carried, ged, false);
    EXPECT_EQ(resumed, full) << "split " << split;
  }
}

TEST(SelectorIndexTest, PrebuiltIndexIsIdenticalToLocalBuild) {
  SelectorEnv setup = MakeSetup();
  SelectorOptions options;
  options.budget = {.eta_min = 3, .eta_max = 6, .gamma = 8};
  options.walks_per_candidate = 8;

  Rng rng_a(42);
  SelectionResult without = FindCannedPatternSet(
      setup.db, setup.clusters, setup.csgs, options, rng_a);

  FlatSummaryIndex index = BuildFlatSummaryIndex(setup.csgs);
  Rng rng_b(42);
  SelectionResult with = FindCannedPatternSet(
      setup.db, setup.clusters, setup.csgs, options, rng_b,
      RunContext::NoLimit(), SelectorCheckpointHooks{}, &index);

  ASSERT_EQ(with.patterns.size(), without.patterns.size());
  for (size_t i = 0; i < with.patterns.size(); ++i) {
    EXPECT_EQ(with.patterns[i].score, without.patterns[i].score);
    EXPECT_EQ(with.patterns[i].ccov, without.patterns[i].ccov);
    EXPECT_EQ(with.patterns[i].div, without.patterns[i].div);
    EXPECT_TRUE(SameGraph(with.patterns[i].graph, without.patterns[i].graph));
  }
}

TEST(SelectorReplayTest, RecordedDiagnosticsReplay) {
  SelectorEnv setup = MakeSetup();
  SelectorOptions options;
  options.budget = {.eta_min = 3, .eta_max = 6, .gamma = 8};
  options.walks_per_candidate = 8;
  Rng rng(7);
  SelectionResult result = FindCannedPatternSet(
      setup.db, setup.clusters, setup.csgs, options, rng);
  ASSERT_GE(result.patterns.size(), 2u);

  std::vector<Graph> summaries;
  for (const ClusterSummaryGraph& csg : setup.csgs) {
    summaries.push_back(csg.ToGraph());
  }
  ClusterWeights cw(setup.clusters, setup.db.size());
  LabelCoverageIndex label_index(setup.db);
  std::vector<Graph> prefix;
  for (const SelectedPattern& p : result.patterns) {
    if (p.fallback) break;
    // Diversity: the memoized fold must equal the from-scratch value against
    // the panel selected before this pattern.
    double expected_div =
        prefix.empty() ? 1.0 : PatternSetDiversity(p.graph, prefix,
                                                   options.ged);
    EXPECT_EQ(p.div, expected_div);
    // Coverage: the recorded ccov must equal a fresh coverage test summed
    // against the weights as decayed by the preceding selections.
    std::vector<bool> covered = CoveredCsgs(p.graph, summaries);
    double expected_ccov = 0.0;
    for (size_t c = 0; c < covered.size(); ++c) {
      if (covered[c]) expected_ccov += cw.Get(c);
    }
    EXPECT_EQ(p.ccov, expected_ccov);
    EXPECT_EQ(p.lcov, label_index.PatternLabelCoverage(p.graph));
    EXPECT_EQ(p.cog, CognitiveLoad(p.graph));
    for (size_t c = 0; c < covered.size(); ++c) {
      if (covered[c]) cw.Decay(c, options.weight_decay);
    }
    prefix.push_back(p.graph);
  }
}

TEST(PreparedCorpusTest, CarriesSummaryIndex) {
  SelectorEnv setup = MakeSetup(30, 21);
  CatapultOptions options;
  options.selector.budget = {.eta_min = 3, .eta_max = 5, .gamma = 4};
  options.selector.walks_per_candidate = 6;
  PreparedCorpus corpus =
      PrepareCorpus(setup.db, options, RunContext::NoLimit());
  ASSERT_TRUE(corpus.ok());
  EXPECT_EQ(corpus.summary_index.size(), corpus.csgs.size());
  // The index's plain-graph summaries match the CSGs' own views.
  for (size_t i = 0; i < corpus.csgs.size(); ++i) {
    Graph expected = corpus.csgs[i].ToGraph();
    const Graph& got = corpus.summary_index.summaries[i];
    EXPECT_EQ(got.NumVertices(), expected.NumVertices());
    EXPECT_EQ(got.NumEdges(), expected.NumEdges());
  }
}

}  // namespace
}  // namespace catapult
