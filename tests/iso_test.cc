#include <gtest/gtest.h>

#include "src/iso/ged.h"
#include "src/iso/mcs.h"
#include "src/iso/vf2.h"
#include "src/util/rng.h"
#include "src/graph/algorithms.h"

namespace catapult {
namespace {

Graph Ring(size_t n, Label label = 0) {
  Graph g;
  for (size_t i = 0; i < n; ++i) g.AddVertex(label);
  for (size_t i = 0; i < n; ++i) {
    g.AddEdge(static_cast<VertexId>(i), static_cast<VertexId>((i + 1) % n));
  }
  return g;
}

Graph Path(size_t n, Label label = 0) {
  Graph g;
  for (size_t i = 0; i < n; ++i) g.AddVertex(label);
  for (size_t i = 0; i + 1 < n; ++i) {
    g.AddEdge(static_cast<VertexId>(i), static_cast<VertexId>(i + 1));
  }
  return g;
}

// Labelled molecule-ish target: C-C(-O)-N ring with tail.
Graph LabelledTarget() {
  Graph g;
  VertexId c1 = g.AddVertex(0);  // C
  VertexId c2 = g.AddVertex(0);  // C
  VertexId o = g.AddVertex(1);   // O
  VertexId n = g.AddVertex(2);   // N
  VertexId c3 = g.AddVertex(0);  // C
  g.AddEdge(c1, c2);
  g.AddEdge(c2, o);
  g.AddEdge(c2, n);
  g.AddEdge(n, c3);
  g.AddEdge(c3, c1);
  return g;
}

TEST(Vf2Test, PathInRing) {
  EXPECT_TRUE(ContainsSubgraph(Path(3), Ring(5)));
  EXPECT_TRUE(ContainsSubgraph(Path(5), Ring(5)));
}

TEST(Vf2Test, RingNotInPath) {
  EXPECT_FALSE(ContainsSubgraph(Ring(3), Path(5)));
}

TEST(Vf2Test, LargerPatternNeverContained) {
  EXPECT_FALSE(ContainsSubgraph(Ring(6), Ring(5)));
}

TEST(Vf2Test, LabelsMustMatch) {
  Graph pattern;
  pattern.AddVertex(0);
  pattern.AddVertex(1);
  pattern.AddEdge(0, 1);
  Graph target;
  target.AddVertex(0);
  target.AddVertex(2);
  target.AddEdge(0, 1);
  EXPECT_FALSE(ContainsSubgraph(pattern, target));
  target.AddVertex(1);
  target.AddEdge(0, 2);
  EXPECT_TRUE(ContainsSubgraph(pattern, target));
}

TEST(Vf2Test, LabelledPatternInTarget) {
  Graph pattern;  // O-C-N star
  VertexId c = pattern.AddVertex(0);
  VertexId o = pattern.AddVertex(1);
  VertexId n = pattern.AddVertex(2);
  pattern.AddEdge(c, o);
  pattern.AddEdge(c, n);
  EXPECT_TRUE(ContainsSubgraph(pattern, LabelledTarget()));
}

TEST(Vf2Test, InducedModeRejectsExtraEdges) {
  // P3 (path) embeds in a triangle non-induced but not induced.
  IsoOptions induced;
  induced.induced = true;
  EXPECT_TRUE(ContainsSubgraph(Path(3), Ring(3)));
  EXPECT_FALSE(ContainsSubgraph(Path(3), Ring(3), induced));
}

TEST(Vf2Test, CountEmbeddingsOfEdgeInTriangle) {
  // An unlabelled edge has 6 embeddings in a triangle (3 edges x 2
  // orientations).
  EXPECT_EQ(SubgraphIsomorphism(Path(2), Ring(3)).Count(0), 6u);
}

TEST(Vf2Test, CountRespectsCap) {
  EXPECT_EQ(SubgraphIsomorphism(Path(2), Ring(3)).Count(4), 4u);
}

TEST(Vf2Test, EnumerateProducesValidEmbeddings) {
  Graph pattern = Path(3);
  Graph target = Ring(4);
  SubgraphIsomorphism iso(pattern, target);
  size_t count = iso.Enumerate([&](const Embedding& e) {
    // Each pattern edge must be realised.
    for (const Edge& pe : pattern.EdgeList()) {
      EXPECT_TRUE(target.HasEdge(e[pe.u], e[pe.v]));
    }
    return true;
  });
  EXPECT_GT(count, 0u);
}

TEST(Vf2Test, MatchEdgeLabels) {
  Graph pattern;
  pattern.AddVertex(0);
  pattern.AddVertex(0);
  pattern.AddEdge(0, 1, 5);
  Graph target;
  target.AddVertex(0);
  target.AddVertex(0);
  target.AddEdge(0, 1, 6);
  IsoOptions options;
  options.match_edge_labels = true;
  EXPECT_FALSE(ContainsSubgraph(pattern, target, options));
  EXPECT_TRUE(ContainsSubgraph(pattern, target));  // default ignores them
}

TEST(Vf2Test, BudgetExhaustionReported) {
  bool exhausted = false;
  IsoOptions options;
  options.node_budget = 2;
  options.budget_exhausted = &exhausted;
  EXPECT_FALSE(ContainsSubgraph(Ring(6), Ring(12), options));
  EXPECT_TRUE(exhausted);
}

TEST(AreIsomorphicTest, RingsOfEqualSize) {
  EXPECT_TRUE(AreIsomorphic(Ring(5), Ring(5)));
  EXPECT_FALSE(AreIsomorphic(Ring(5), Ring(6)));
}

TEST(AreIsomorphicTest, DetectsRelabelledIsomorphs) {
  Graph a = LabelledTarget();
  // Same structure, built in different vertex order.
  Graph b;
  VertexId n = b.AddVertex(2);
  VertexId c3 = b.AddVertex(0);
  VertexId c1 = b.AddVertex(0);
  VertexId c2 = b.AddVertex(0);
  VertexId o = b.AddVertex(1);
  b.AddEdge(c2, c1);
  b.AddEdge(o, c2);
  b.AddEdge(n, c2);
  b.AddEdge(c3, n);
  b.AddEdge(c1, c3);
  EXPECT_TRUE(AreIsomorphic(a, b));
}

TEST(AreIsomorphicTest, SameCountsDifferentStructure) {
  // Star K1,3 vs path P4: both 4 vertices 3 edges.
  Graph star;
  VertexId c = star.AddVertex(0);
  for (int i = 0; i < 3; ++i) star.AddEdge(c, star.AddVertex(0));
  EXPECT_FALSE(AreIsomorphic(star, Path(4)));
}

TEST(FingerprintTest, InvariantUnderRelabelling) {
  Graph a = LabelledTarget();
  Graph b;
  VertexId n = b.AddVertex(2);
  VertexId c3 = b.AddVertex(0);
  VertexId c1 = b.AddVertex(0);
  VertexId c2 = b.AddVertex(0);
  VertexId o = b.AddVertex(1);
  b.AddEdge(c2, c1);
  b.AddEdge(o, c2);
  b.AddEdge(n, c2);
  b.AddEdge(c3, n);
  b.AddEdge(c1, c3);
  EXPECT_EQ(GraphFingerprint(a), GraphFingerprint(b));
}

TEST(FingerprintTest, DistinguishesStarFromPath) {
  Graph star;
  VertexId c = star.AddVertex(0);
  for (int i = 0; i < 3; ++i) star.AddEdge(c, star.AddVertex(0));
  EXPECT_NE(GraphFingerprint(star), GraphFingerprint(Path(4)));
}

TEST(McsTest, IdenticalGraphsFullOverlap) {
  Graph g = LabelledTarget();
  McsResult r = MaxCommonSubgraph(g, g);
  EXPECT_TRUE(r.exact);
  EXPECT_EQ(r.common_edges, g.NumEdges());
}

TEST(McsTest, SimilarityOfIdenticalIsOne) {
  Graph g = Ring(5);
  EXPECT_DOUBLE_EQ(McsSimilarity(g, g), 1.0);
}

TEST(McsTest, DisjointLabelsShareNothing) {
  EXPECT_DOUBLE_EQ(McsSimilarity(Ring(4, 0), Ring(4, 1)), 0.0);
}

TEST(McsTest, PathInRingOverlap) {
  // MCCS of P4 and C6 (all labels equal) is P4 itself: 3 edges.
  McsResult r = MaxCommonSubgraph(Path(4), Ring(6));
  EXPECT_EQ(r.common_edges, 3u);
}

TEST(McsTest, ConnectedVsUnconnected) {
  // Two triangles joined by nothing vs one triangle + far apart pieces:
  // a: triangle + disjoint edge is not constructible (we require connected
  // graphs), so instead compare a "bowtie-ish" shape.
  // a: two triangles sharing a vertex. b: two triangles joined by a long
  // path. The unconnected MCS can pick both triangles (6 edges); the
  // connected MCCS at most one triangle plus path stubs.
  Graph a;  // bowtie
  VertexId shared = a.AddVertex(0);
  VertexId a1 = a.AddVertex(0);
  VertexId a2 = a.AddVertex(0);
  VertexId a3 = a.AddVertex(0);
  VertexId a4 = a.AddVertex(0);
  a.AddEdge(shared, a1);
  a.AddEdge(a1, a2);
  a.AddEdge(a2, shared);
  a.AddEdge(shared, a3);
  a.AddEdge(a3, a4);
  a.AddEdge(a4, shared);

  Graph b;  // two triangles joined by a 3-edge path
  VertexId b0 = b.AddVertex(0);
  VertexId b1 = b.AddVertex(0);
  VertexId b2 = b.AddVertex(0);
  b.AddEdge(b0, b1);
  b.AddEdge(b1, b2);
  b.AddEdge(b2, b0);
  VertexId p1 = b.AddVertex(0);
  VertexId p2 = b.AddVertex(0);
  b.AddEdge(b0, p1);
  b.AddEdge(p1, p2);
  VertexId c0 = b.AddVertex(0);
  VertexId c1 = b.AddVertex(0);
  VertexId c2 = b.AddVertex(0);
  b.AddEdge(p2, c0);
  b.AddEdge(c0, c1);
  b.AddEdge(c1, c2);
  b.AddEdge(c2, c0);

  McsOptions unconnected;
  unconnected.connected = false;
  McsResult mcs = MaxCommonSubgraph(a, b, unconnected);
  McsOptions connected;
  connected.connected = true;
  McsResult mccs = MaxCommonSubgraph(a, b, connected);
  EXPECT_GE(mcs.common_edges, mccs.common_edges);
  EXPECT_GE(mccs.common_edges, 3u);  // at least one triangle
}

TEST(McsTest, AnytimeUnderTinyBudget) {
  McsOptions options;
  options.node_budget = 3;
  McsResult r = MaxCommonSubgraph(Ring(6), Ring(6), options);
  EXPECT_FALSE(r.exact);
  // Still returns something sane.
  EXPECT_LE(r.common_edges, 6u);
}

TEST(GedLowerBoundTest, IdenticalGraphsZero) {
  Graph g = LabelledTarget();
  EXPECT_DOUBLE_EQ(GedLowerBound(g, g), 0.0);
}

TEST(GedLowerBoundTest, CountsSizeAndLabelDifferences) {
  // a: P2 labels {0,0}; b: P3 labels {0,1,2}.
  Graph a = Path(2, 0);
  Graph b;
  b.AddVertex(0);
  b.AddVertex(1);
  b.AddVertex(2);
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  // |V| term: |2-3| + min(2,3) - |{0} multiset ^| = 1 + 2 - 1 = 2.
  // |E| term: |1-2| = 1. Total 3.
  EXPECT_DOUBLE_EQ(GedLowerBound(a, b), 3.0);
}

TEST(GedTest, IdenticalGraphsZero) {
  Graph g = LabelledTarget();
  GedResult r = GraphEditDistance(g, g);
  EXPECT_TRUE(r.exact);
  EXPECT_DOUBLE_EQ(r.distance, 0.0);
}

TEST(GedTest, SingleVertexRelabel) {
  Graph a = Path(3, 0);
  Graph b = Path(3, 0);
  b.SetVertexLabel(2, 1);
  EXPECT_DOUBLE_EQ(GraphEditDistance(a, b).distance, 1.0);
}

TEST(GedTest, SingleEdgeInsertion) {
  // C4 vs P4: one edge difference.
  EXPECT_DOUBLE_EQ(GraphEditDistance(Path(4), Ring(4)).distance, 1.0);
}

TEST(GedTest, VertexInsertion) {
  // P3 -> P4: one vertex + one edge.
  EXPECT_DOUBLE_EQ(GraphEditDistance(Path(3), Path(4)).distance, 2.0);
}

TEST(GedTest, Symmetry) {
  Graph a = Ring(5);
  Graph b = Path(4);
  EXPECT_DOUBLE_EQ(GraphEditDistance(a, b).distance,
                   GraphEditDistance(b, a).distance);
}

TEST(GedTest, AlwaysAtLeastLowerBound) {
  Rng rng(31);
  for (int trial = 0; trial < 20; ++trial) {
    // Random small labelled graphs.
    Graph base = Ring(5, static_cast<Label>(trial % 3));
    Graph a = RandomConnectedSubgraph(base, 3 + trial % 3, rng);
    Graph b = RandomConnectedSubgraph(base, 2 + trial % 4, rng);
    if (a.NumEdges() == 0 || b.NumEdges() == 0) continue;
    GedResult r = GraphEditDistance(a, b);
    EXPECT_GE(r.distance + 1e-9, GedLowerBound(a, b));
  }
}

TEST(GedTest, TriangleInequalitySpotCheck) {
  Graph a = Path(3);
  Graph b = Ring(3);
  Graph c = Ring(4);
  double ab = GraphEditDistance(a, b).distance;
  double bc = GraphEditDistance(b, c).distance;
  double ac = GraphEditDistance(a, c).distance;
  EXPECT_LE(ac, ab + bc + 1e-9);
}

}  // namespace
}  // namespace catapult
