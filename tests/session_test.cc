#include "src/formulate/session.h"

#include <gtest/gtest.h>

#include "src/formulate/evaluate.h"
#include "src/formulate/steps.h"

namespace catapult {
namespace {

Graph Ring(size_t n, Label label = 0) {
  Graph g;
  for (size_t i = 0; i < n; ++i) g.AddVertex(label);
  for (size_t i = 0; i < n; ++i) {
    g.AddEdge(static_cast<VertexId>(i), static_cast<VertexId>((i + 1) % n));
  }
  return g;
}

// Two triangles joined by one bridge edge.
Graph TwoTriangles(Label label = 0) {
  Graph g = Ring(3, label);
  VertexId a = g.AddVertex(label);
  VertexId b = g.AddVertex(label);
  VertexId c = g.AddVertex(label);
  g.AddEdge(a, b);
  g.AddEdge(b, c);
  g.AddEdge(c, a);
  g.AddEdge(0, a);
  return g;
}

TEST(SessionTest, PlanLengthMatchesStepCount) {
  Graph query = TwoTriangles(3);
  GuiModel gui = MakeCatapultGui({Ring(3, 3)});
  FormulationPlan plan = PlanFormulation(query, gui);
  QueryFormulation f = FormulateQuery(query, gui);
  EXPECT_EQ(plan.steps.size(), f.steps_patterns);
}

TEST(SessionTest, ExampleOneOneShape) {
  // Example 1.1-style: a query of two pattern cores plus a bridge edge
  // formulates in 3 steps (place, place, edge).
  Graph query = TwoTriangles(3);
  GuiModel gui = MakeCatapultGui({Ring(3, 3)});
  FormulationPlan plan = PlanFormulation(query, gui);
  ASSERT_EQ(plan.steps.size(), 3u);
  EXPECT_EQ(plan.steps[0].kind, FormulationStep::Kind::kPlacePattern);
  EXPECT_EQ(plan.steps[1].kind, FormulationStep::Kind::kPlacePattern);
  EXPECT_EQ(plan.steps[2].kind, FormulationStep::Kind::kAddEdge);
}

TEST(SessionTest, UnlabelledPanelEmitsRelabelSteps) {
  Graph query = Ring(5, 3);
  GuiModel gui = MakePubChemGui(0);
  FormulationPlan plan = PlanFormulation(query, gui);
  size_t relabels = 0;
  for (const FormulationStep& s : plan.steps) {
    if (s.kind == FormulationStep::Kind::kRelabelVertex) ++relabels;
  }
  EXPECT_EQ(relabels, 5u);  // one per placed pattern vertex
  QueryFormulation f = FormulateQuery(query, gui);
  EXPECT_EQ(plan.steps.size(), f.steps_patterns);
}

TEST(SessionTest, NoPatternsFallsBackToEdgeAtATime) {
  Graph query = Ring(4, 7);
  GuiModel gui = MakeCatapultGui({});
  FormulationPlan plan = PlanFormulation(query, gui);
  EXPECT_EQ(plan.steps.size(), StepsEdgeAtATime(query));
  // First the vertices, then the edges.
  EXPECT_EQ(plan.steps.front().kind, FormulationStep::Kind::kAddVertex);
  EXPECT_EQ(plan.steps.back().kind, FormulationStep::Kind::kAddEdge);
}

TEST(SessionTest, DescribePlanMentionsEveryStep) {
  Graph query = TwoTriangles(3);
  GuiModel gui = MakeCatapultGui({Ring(3, 3)});
  FormulationPlan plan = PlanFormulation(query, gui);
  std::string text = DescribePlan(plan, query, gui);
  EXPECT_NE(text.find("Step 1:"), std::string::npos);
  EXPECT_NE(text.find("Step 3:"), std::string::npos);
  EXPECT_NE(text.find("drag pattern P1"), std::string::npos);
  EXPECT_NE(text.find("construct an edge"), std::string::npos);
}

TEST(SessionTest, DescribeUsesLabelNames) {
  LabelMap labels;
  Label c = labels.Intern("C");
  Graph query = Ring(3, c);
  GuiModel gui = MakeCatapultGui({});
  FormulationPlan plan = PlanFormulation(query, gui);
  std::string text = DescribePlan(plan, query, gui, &labels);
  EXPECT_NE(text.find("labelled C"), std::string::npos);
}

}  // namespace
}  // namespace catapult
