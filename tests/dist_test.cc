// Chaos suite for sharded multi-process execution (DESIGN.md §12): the
// backoff policy, the shard planner, the pipe wire protocol, per-cluster
// shard artifacts, and — the acceptance bar — that a multi-process run
// survives every injected kill site (worker death before/after checkpoint,
// artifact corruption, nonzero exits, heartbeat hangs, unconditional
// failure driving quarantine and in-process fallback) while producing a
// selection bit-identical to the in-process run, down to the checkpoint
// bytes the two modes leave behind.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/core/catapult.h"
#include "src/core/report.h"
#include "src/data/molecule_generator.h"
#include "src/dist/shard_plan.h"
#include "src/dist/wire.h"
#include "src/dist/worker.h"
#include "src/persist/checkpoint.h"
#include "src/persist/codec.h"
#include "src/persist/record_io.h"
#include "src/util/backoff.h"
#include "src/util/failpoint.h"
#include "src/util/rng.h"

namespace catapult {
namespace {

using dist::PlanShards;
using dist::ShardPlan;
using persist::RecordType;

class DistTest : public ::testing::Test {
 protected:
  void TearDown() override { failpoint::DisarmAll(); }

  std::string ScratchDir(const std::string& name) {
    std::string dir = ::testing::TempDir() + "catapult_dist_" +
                      ::testing::UnitTest::GetInstance()
                          ->current_test_info()
                          ->name() +
                      "_" + name;
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    return dir;
  }
};

GraphDatabase SmallDb(uint64_t seed = 31, size_t n = 36) {
  MoleculeGeneratorOptions gen;
  gen.num_graphs = n;
  gen.min_vertices = 8;
  gen.max_vertices = 14;
  gen.seed = seed;
  return GenerateMoleculeDatabase(gen);
}

CatapultOptions FastOptions() {
  CatapultOptions options;
  options.selector.budget.eta_min = 3;
  options.selector.budget.eta_max = 6;
  options.selector.budget.gamma = 6;
  options.selector.walks_per_candidate = 8;
  options.clustering.max_cluster_size = 10;
  options.clustering.fine_mcs.node_budget = 3000;
  options.seed = 99;
  return options;
}

// Sharded variant of the same configuration. Retries are quick so the
// chaos tests exercise real backoff without slowing the suite down.
CatapultOptions DistOptionsOf(const CatapultOptions& base,
                              size_t processes) {
  CatapultOptions options = base;
  options.processes = processes;
  options.shard_backoff_base_ms = 5.0;
  options.shard_backoff_cap_ms = 40.0;
  return options;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  return bytes;
}

std::string EncodeCsgBytes(const ClusterSummaryGraph& csg) {
  persist::BinaryWriter w;
  persist::EncodeCsg(csg, w);
  return w.TakeBuffer();
}

// The acceptance bar: selection, clusters, and CSGs of a sharded run must
// match the in-process run bit-for-bit, scores included.
void ExpectSameResult(const CatapultResult& expected,
                      const CatapultResult& actual) {
  ASSERT_EQ(expected.clusters, actual.clusters);
  ASSERT_EQ(expected.csgs.size(), actual.csgs.size());
  for (size_t i = 0; i < expected.csgs.size(); ++i) {
    EXPECT_EQ(EncodeCsgBytes(expected.csgs[i]), EncodeCsgBytes(actual.csgs[i]))
        << "csg " << i;
  }
  ASSERT_EQ(expected.selection.patterns.size(),
            actual.selection.patterns.size());
  for (size_t i = 0; i < expected.selection.patterns.size(); ++i) {
    const SelectedPattern& a = expected.selection.patterns[i];
    const SelectedPattern& b = actual.selection.patterns[i];
    EXPECT_EQ(a.graph.DebugString(), b.graph.DebugString()) << "pattern " << i;
    EXPECT_EQ(a.score, b.score) << "pattern " << i;
    EXPECT_EQ(a.ccov, b.ccov) << "pattern " << i;
    EXPECT_EQ(a.lcov, b.lcov) << "pattern " << i;
    EXPECT_EQ(a.div, b.div) << "pattern " << i;
    EXPECT_EQ(a.cog, b.cog) << "pattern " << i;
  }
}

bool HasEvent(const std::vector<dist::ShardEvent>& events,
              dist::ShardEvent::Kind kind) {
  for (const dist::ShardEvent& e : events) {
    if (e.kind == kind) return true;
  }
  return false;
}

// --- backoff policy ---------------------------------------------------------

TEST(BackoffTest, DeterministicDoublingUpToCap) {
  ExponentialBackoff backoff(25.0, 1000.0);
  EXPECT_EQ(backoff.DelayMs(0), 0.0);  // no failure yet, no wait
  EXPECT_EQ(backoff.DelayMs(1), 25.0);
  EXPECT_EQ(backoff.DelayMs(2), 50.0);
  EXPECT_EQ(backoff.DelayMs(3), 100.0);
  EXPECT_EQ(backoff.DelayMs(6), 800.0);
  EXPECT_EQ(backoff.DelayMs(7), 1000.0);  // capped
  EXPECT_EQ(backoff.DelayMs(40), 1000.0);  // stays capped, no overflow
  // Pure function of the attempt number: replays identically.
  EXPECT_EQ(backoff.DelayMs(3), ExponentialBackoff(25.0, 1000.0).DelayMs(3));
}

TEST(BackoffTest, DegenerateInputsClampSafely) {
  EXPECT_EQ(ExponentialBackoff(0.0, 0.0).DelayMs(5), 0.0);
  EXPECT_EQ(ExponentialBackoff(-10.0, 100.0).DelayMs(3), 0.0);
  EXPECT_EQ(ExponentialBackoff(50.0, 10.0).DelayMs(1), 10.0);  // cap < base
}

// --- shard planner ----------------------------------------------------------

TEST(ShardPlanTest, EveryClusterInExactlyOneShard) {
  std::vector<size_t> sizes = {7, 1, 5, 5, 2, 9, 1, 3};
  ShardPlan plan = PlanShards(sizes, 3);
  EXPECT_EQ(plan.shards.size(), 3u);
  EXPECT_EQ(plan.TotalClusters(), sizes.size());
  std::vector<int> seen(sizes.size(), 0);
  for (const auto& shard : plan.shards) {
    EXPECT_FALSE(shard.empty());
    EXPECT_TRUE(std::is_sorted(shard.begin(), shard.end()));
    for (size_t idx : shard) {
      ASSERT_LT(idx, sizes.size());
      ++seen[idx];
    }
  }
  for (size_t i = 0; i < seen.size(); ++i) EXPECT_EQ(seen[i], 1) << i;
}

TEST(ShardPlanTest, BalancesLoadDeterministically) {
  std::vector<size_t> sizes = {10, 10, 10, 1, 1, 1};
  ShardPlan plan = PlanShards(sizes, 3);
  ASSERT_EQ(plan.shards.size(), 3u);
  // LPT: each shard gets one size-10 cluster plus one size-1 cluster.
  for (const auto& shard : plan.shards) {
    size_t load = 0;
    for (size_t idx : shard) load += sizes[idx];
    EXPECT_EQ(load, 11u);
  }
  // Same input, same plan.
  EXPECT_EQ(plan.shards, PlanShards(sizes, 3).shards);
}

TEST(ShardPlanTest, FewerClustersThanShardsYieldsSingletons) {
  ShardPlan plan = PlanShards({4, 2}, 8);
  EXPECT_EQ(plan.shards.size(), 2u);
  EXPECT_EQ(plan.TotalClusters(), 2u);
  EXPECT_TRUE(PlanShards({}, 4).shards.empty());
}

// --- wire protocol ----------------------------------------------------------

TEST(WireTest, AllFrameTypesRoundTrip) {
  dist::FrameReader reader;
  std::string stream;
  stream += dist::EncodeFrame(dist::FrameType::kHello,
                              dist::Encode(dist::HelloFrame{3, 1, 4242}));
  stream += dist::EncodeFrame(dist::FrameType::kHeartbeat,
                              dist::Encode(dist::HeartbeatFrame{3, 17, 2}));
  stream +=
      dist::EncodeFrame(dist::FrameType::kClusterDone,
                        dist::Encode(dist::ClusterDoneFrame{3, 9, true}));
  dist::ShardDoneFrame done{3, 5, std::vector<uint64_t>(obs::kNumCounters, 0)};
  done.counters[2] = 77;
  stream += dist::EncodeFrame(dist::FrameType::kShardDone, dist::Encode(done));
  stream += dist::EncodeFrame(
      dist::FrameType::kShardError,
      dist::Encode(dist::ShardErrorFrame{3, "deadline expired"}));

  reader.Feed(stream.data(), stream.size());

  auto hello = reader.Next();
  ASSERT_TRUE(hello.has_value());
  EXPECT_EQ(hello->type, dist::FrameType::kHello);
  dist::HelloFrame h;
  ASSERT_TRUE(dist::Decode(hello->payload, &h));
  EXPECT_EQ(h.shard, 3u);
  EXPECT_EQ(h.attempt, 1u);
  EXPECT_EQ(h.pid, 4242u);

  auto hb = reader.Next();
  ASSERT_TRUE(hb.has_value());
  dist::HeartbeatFrame hbf;
  ASSERT_TRUE(dist::Decode(hb->payload, &hbf));
  EXPECT_EQ(hbf.seq, 17u);

  auto cd = reader.Next();
  ASSERT_TRUE(cd.has_value());
  dist::ClusterDoneFrame cdf;
  ASSERT_TRUE(dist::Decode(cd->payload, &cdf));
  EXPECT_EQ(cdf.cluster_index, 9u);
  EXPECT_TRUE(cdf.reused);

  auto sd = reader.Next();
  ASSERT_TRUE(sd.has_value());
  dist::ShardDoneFrame sdf;
  ASSERT_TRUE(dist::Decode(sd->payload, &sdf));
  EXPECT_EQ(sdf.clusters_done, 5u);
  ASSERT_EQ(sdf.counters.size(), obs::kNumCounters);
  EXPECT_EQ(sdf.counters[2], 77u);

  auto se = reader.Next();
  ASSERT_TRUE(se.has_value());
  dist::ShardErrorFrame sef;
  ASSERT_TRUE(dist::Decode(se->payload, &sef));
  EXPECT_EQ(sef.message, "deadline expired");

  EXPECT_FALSE(reader.Next().has_value());
  EXPECT_FALSE(reader.corrupt());
}

TEST(WireTest, ByteAtATimeFeedingReassemblesFrames) {
  std::string stream = dist::EncodeFrame(
      dist::FrameType::kHeartbeat, dist::Encode(dist::HeartbeatFrame{1, 2, 3}));
  dist::FrameReader reader;
  size_t frames = 0;
  for (char c : stream) {
    reader.Feed(&c, 1);
    while (reader.Next().has_value()) ++frames;
  }
  EXPECT_EQ(frames, 1u);
  EXPECT_FALSE(reader.corrupt());
}

TEST(WireTest, ChecksumMismatchPoisonsStream) {
  std::string stream = dist::EncodeFrame(
      dist::FrameType::kHeartbeat, dist::Encode(dist::HeartbeatFrame{1, 2, 3}));
  stream[stream.size() - 1] ^= 0x40;  // flip one payload bit
  dist::FrameReader reader;
  reader.Feed(stream.data(), stream.size());
  EXPECT_FALSE(reader.Next().has_value());
  EXPECT_TRUE(reader.corrupt());
  // A poisoned reader stays poisoned: no resynchronisation.
  std::string good = dist::EncodeFrame(
      dist::FrameType::kHeartbeat, dist::Encode(dist::HeartbeatFrame{1, 2, 3}));
  reader.Feed(good.data(), good.size());
  EXPECT_FALSE(reader.Next().has_value());
}

TEST(WireTest, BadMagicAndOversizedPayloadPoison) {
  {
    dist::FrameReader reader;
    std::string junk = "not a CTWF frame, definitely";
    reader.Feed(junk.data(), junk.size());
    EXPECT_FALSE(reader.Next().has_value());
    EXPECT_TRUE(reader.corrupt());
  }
  {
    // Valid magic, absurd payload size: corruption, not a huge allocation.
    std::string header = dist::EncodeFrame(dist::FrameType::kHeartbeat, "");
    header[8] = '\xff';
    header[9] = '\xff';
    header[10] = '\xff';
    header[11] = '\x7f';
    dist::FrameReader reader;
    reader.Feed(header.data(), header.size());
    EXPECT_FALSE(reader.Next().has_value());
    EXPECT_TRUE(reader.corrupt());
  }
}

TEST(WireTest, TruncatedFrameIsIncompleteNotCorrupt) {
  std::string stream = dist::EncodeFrame(
      dist::FrameType::kShardError,
      dist::Encode(dist::ShardErrorFrame{0, "mid-write death"}));
  dist::FrameReader reader;
  reader.Feed(stream.data(), stream.size() / 2);  // worker died mid-write
  EXPECT_FALSE(reader.Next().has_value());
  EXPECT_FALSE(reader.corrupt());  // dead peer, not a poisoned stream
}

// --- shard artifacts --------------------------------------------------------

class ShardArtifactTest : public DistTest {
 protected:
  // A tiny spec over a fake "coarse partition" of SmallDb, enough to drive
  // ComputeShardCluster / Save / Load directly.
  dist::ShardExecutionSpec MakeSpec(const GraphDatabase& db,
                                    std::vector<std::vector<GraphId>>* coarse,
                                    const std::string& dir) {
    coarse->clear();
    std::vector<GraphId> members;
    for (GraphId g = 0; g < db.size(); ++g) members.push_back(g);
    coarse->push_back(members);
    dist::ShardExecutionSpec spec;
    spec.db = &db;
    spec.coarse = coarse;
    Rng rng(7);
    spec.streams = SplitFineStreams(rng, coarse->size());
    spec.fine.max_cluster_size = 8;
    spec.shard_dir = dir;
    spec.fingerprint = 0xfeedface;
    return spec;
  }
};

TEST_F(ShardArtifactTest, RoundTripsAndValidatesBinding) {
  GraphDatabase db = SmallDb();
  std::vector<std::vector<GraphId>> coarse;
  dist::ShardExecutionSpec spec = MakeSpec(db, &coarse, ScratchDir("rt"));

  dist::ShardClusterResult computed =
      dist::ComputeShardCluster(spec, 0, RunContext::NoLimit());
  ASSERT_TRUE(computed.Complete());
  ASSERT_FALSE(computed.fine_clusters.empty());
  ASSERT_EQ(computed.fine_clusters.size(), computed.csgs.size());
  ASSERT_EQ(dist::SaveShardArtifact(spec, 0, computed), "");

  dist::ShardClusterResult loaded;
  ASSERT_EQ(dist::LoadShardArtifact(spec, 0, &loaded), "");
  EXPECT_EQ(loaded.fine_clusters, computed.fine_clusters);
  ASSERT_EQ(loaded.csgs.size(), computed.csgs.size());
  for (size_t i = 0; i < loaded.csgs.size(); ++i) {
    EXPECT_EQ(EncodeCsgBytes(loaded.csgs[i]), EncodeCsgBytes(computed.csgs[i]));
  }

  // Loading a missing cluster reports, not crashes.
  dist::ShardClusterResult missing;
  EXPECT_NE(dist::LoadShardArtifact(spec, 1, &missing), "");
}

TEST_F(ShardArtifactTest, RejectsArtifactBoundToDifferentCluster) {
  GraphDatabase db = SmallDb();
  std::vector<std::vector<GraphId>> coarse;
  dist::ShardExecutionSpec spec = MakeSpec(db, &coarse, ScratchDir("bind"));
  dist::ShardClusterResult computed =
      dist::ComputeShardCluster(spec, 0, RunContext::NoLimit());
  ASSERT_EQ(dist::SaveShardArtifact(spec, 0, computed), "");

  // Same file, different current membership: the binding check must fire.
  coarse[0].pop_back();
  Rng rng(7);
  spec.streams = SplitFineStreams(rng, coarse.size());
  dist::ShardClusterResult loaded;
  std::string err = dist::LoadShardArtifact(spec, 0, &loaded);
  EXPECT_NE(err, "") << "artifact bound to a different member list accepted";
}

TEST_F(ShardArtifactTest, RejectsCorruptedArtifactBytes) {
  GraphDatabase db = SmallDb();
  std::vector<std::vector<GraphId>> coarse;
  dist::ShardExecutionSpec spec = MakeSpec(db, &coarse, ScratchDir("flip"));
  dist::ShardClusterResult computed =
      dist::ComputeShardCluster(spec, 0, RunContext::NoLimit());
  ASSERT_EQ(dist::SaveShardArtifact(spec, 0, computed), "");

  std::string path = dist::ShardArtifactPath(spec.shard_dir, 0);
  std::string bytes = ReadFileBytes(path);
  ASSERT_FALSE(bytes.empty());
  bytes[bytes.size() / 2] ^= 0x08;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.close();

  dist::ShardClusterResult loaded;
  EXPECT_NE(dist::LoadShardArtifact(spec, 0, &loaded), "");
}

// --- end-to-end bit-identity ------------------------------------------------

TEST_F(DistTest, FourProcessRunMatchesInProcessRun) {
  GraphDatabase db = SmallDb();
  CatapultOptions base = FastOptions();
  CatapultResult expected = RunCatapult(db, base);
  ASSERT_TRUE(expected.ok());
  EXPECT_FALSE(expected.execution.dist.enabled);

  CatapultResult actual = RunCatapult(db, DistOptionsOf(base, 4));
  ASSERT_TRUE(actual.ok());
  EXPECT_TRUE(actual.execution.dist.enabled);
  EXPECT_EQ(actual.execution.dist.processes, 4u);
  EXPECT_GT(actual.execution.dist.shards, 0u);
  EXPECT_GE(actual.execution.dist.workers_spawned,
            actual.execution.dist.shards);
  EXPECT_EQ(actual.execution.dist.worker_deaths, 0u);
  EXPECT_EQ(actual.execution.dist.quarantined_shards, 0u);
  ExpectSameResult(expected, actual);
}

TEST_F(DistTest, SamplingPathMatchesToo) {
  GraphDatabase db = SmallDb(/*seed=*/77, /*n=*/60);
  CatapultOptions base = FastOptions();
  base.use_sampling = true;
  CatapultResult expected = RunCatapult(db, base);
  ASSERT_TRUE(expected.ok());
  CatapultResult actual = RunCatapult(db, DistOptionsOf(base, 3));
  ASSERT_TRUE(actual.ok());
  ExpectSameResult(expected, actual);
}

TEST_F(DistTest, MultiThreadWorkersMatchSingleThreadRun) {
  GraphDatabase db = SmallDb();
  CatapultOptions base = FastOptions();
  base.threads = 1;
  CatapultResult expected = RunCatapult(db, base);
  ASSERT_TRUE(expected.ok());

  CatapultOptions sharded = DistOptionsOf(base, 2);
  sharded.threads = 4;  // 4 threads inside each worker
  CatapultResult actual = RunCatapult(db, sharded);
  ASSERT_TRUE(actual.ok());
  EXPECT_EQ(actual.execution.threads, 4u);
  ExpectSameResult(expected, actual);
}

TEST_F(DistTest, CheckpointBytesMatchInProcessRun) {
  GraphDatabase db = SmallDb();
  std::string dir_classic = ScratchDir("classic");
  std::string dir_dist = ScratchDir("dist");

  CatapultOptions base = FastOptions();
  base.checkpoint_dir = dir_classic;
  CatapultResult expected = RunCatapult(db, base);
  ASSERT_TRUE(expected.ok());

  CatapultOptions sharded = DistOptionsOf(base, 4);
  sharded.checkpoint_dir = dir_dist;
  CatapultResult actual = RunCatapult(db, sharded);
  ASSERT_TRUE(actual.ok());
  ExpectSameResult(expected, actual);

  // The durable artifacts are the strongest identity witness: both modes
  // must leave byte-identical phase checkpoints behind.
  for (RecordType type :
       {RecordType::kClustering, RecordType::kCsgs, RecordType::kSelection}) {
    std::string classic_bytes = ReadFileBytes(
        dir_classic + "/" + CheckpointStore::FileNameFor(type));
    std::string dist_bytes =
        ReadFileBytes(dir_dist + "/" + CheckpointStore::FileNameFor(type));
    ASSERT_FALSE(classic_bytes.empty());
    EXPECT_EQ(classic_bytes, dist_bytes)
        << "checkpoint " << CheckpointStore::FileNameFor(type);
  }

  // A sharded run's checkpoints resume fine under a different process
  // count — the supervision knobs are excluded from the fingerprint.
  CatapultOptions resume = base;
  resume.checkpoint_dir = dir_dist;
  resume.resume = true;
  CatapultResult resumed = RunCatapult(db, resume);
  ASSERT_TRUE(resumed.ok());
  EXPECT_EQ(resumed.execution.resumed_from, "selection");
  ExpectSameResult(expected, resumed);
}

// --- chaos: every kill site must recover bit-identically --------------------

class DistChaosTest : public DistTest {
 protected:
  // Runs the sharded pipeline under an armed kill site and asserts recovery
  // reproduced the unperturbed in-process result exactly.
  CatapultResult RunChaos(const std::string& site, long count,
                          size_t processes = 4) {
    GraphDatabase db = SmallDb();
    CatapultOptions base = FastOptions();
    CatapultResult expected = RunCatapult(db, base);
    EXPECT_TRUE(expected.ok());

    failpoint::Arm(site, count);
    CatapultResult actual = RunCatapult(db, DistOptionsOf(base, processes));
    failpoint::DisarmAll();
    EXPECT_TRUE(actual.ok());
    ExpectSameResult(expected, actual);
    return actual;
  }
};

TEST_F(DistChaosTest, RecoversFromKillBeforeCheckpoint) {
  CatapultResult result = RunChaos(dist::kFailpointKillBeforeCheckpoint, -1);
  const dist::DistReport& d = result.execution.dist;
  EXPECT_GE(d.worker_deaths, 1u);
  EXPECT_GE(d.shard_retries, 1u);
  EXPECT_TRUE(HasEvent(d.events, dist::ShardEvent::Kind::kWorkerDied));
  EXPECT_TRUE(HasEvent(d.events, dist::ShardEvent::Kind::kShardRetried));
  EXPECT_TRUE(HasEvent(d.events, dist::ShardEvent::Kind::kWorkerSpawned));
}

TEST_F(DistChaosTest, RecoversFromKillAfterCheckpointReusingArtifacts) {
  CatapultResult result = RunChaos(dist::kFailpointKillAfterCheckpoint, -1);
  const dist::DistReport& d = result.execution.dist;
  EXPECT_GE(d.worker_deaths, 1u);
  // The killed worker checkpointed its first cluster before dying; the
  // retry must resume from that artifact, not recompute it.
  EXPECT_GE(d.artifacts_reused, 1u);
  EXPECT_TRUE(HasEvent(d.events, dist::ShardEvent::Kind::kArtifactReused));
}

TEST_F(DistChaosTest, RejectsCorruptShardArtifactAndRecomputes) {
  CatapultResult result = RunChaos(dist::kFailpointCorruptShardArtifact, -1);
  const dist::DistReport& d = result.execution.dist;
  EXPECT_GE(d.artifacts_rejected, 1u);
  EXPECT_GE(d.shard_retries, 1u);
  EXPECT_TRUE(HasEvent(d.events, dist::ShardEvent::Kind::kArtifactRejected));
}

TEST_F(DistChaosTest, RecoversFromNonzeroWorkerExit) {
  CatapultResult result = RunChaos(dist::kFailpointExitNonzero, -1);
  const dist::DistReport& d = result.execution.dist;
  EXPECT_GE(d.worker_deaths, 1u);
  EXPECT_GE(d.shard_retries, 1u);
}

TEST_F(DistChaosTest, DetectsHeartbeatHangAndRecovers) {
  GraphDatabase db = SmallDb();
  CatapultOptions base = FastOptions();
  CatapultResult expected = RunCatapult(db, base);
  ASSERT_TRUE(expected.ok());

  CatapultOptions sharded = DistOptionsOf(base, 4);
  // Tight deadline so the hung workers are detected quickly; comfortably
  // above the suite's scheduling noise floor.
  sharded.shard_heartbeat_timeout_ms = 250.0;
  failpoint::Arm(dist::kFailpointHangHeartbeat, -1);
  CatapultResult actual = RunCatapult(db, sharded);
  failpoint::DisarmAll();
  ASSERT_TRUE(actual.ok());
  ExpectSameResult(expected, actual);

  const dist::DistReport& d = actual.execution.dist;
  EXPECT_GE(d.worker_hangs, 1u);
  EXPECT_GE(d.shard_retries, 1u);
  EXPECT_TRUE(HasEvent(d.events, dist::ShardEvent::Kind::kWorkerHung));
}

TEST_F(DistChaosTest, QuarantinesAfterFailureBudgetAndFallsBackInProcess) {
  GraphDatabase db = SmallDb();
  CatapultOptions base = FastOptions();
  CatapultResult expected = RunCatapult(db, base);
  ASSERT_TRUE(expected.ok());

  CatapultOptions sharded = DistOptionsOf(base, 3);
  sharded.max_shard_retries = 2;
  failpoint::Arm(dist::kFailpointFailAlways, -1);  // every attempt fails
  CatapultResult actual = RunCatapult(db, sharded);
  failpoint::DisarmAll();
  ASSERT_TRUE(actual.ok());
  // The last rung of the ladder still reproduces the exact result.
  ExpectSameResult(expected, actual);

  const dist::DistReport& d = actual.execution.dist;
  EXPECT_EQ(d.quarantined_shards, d.shards);
  EXPECT_EQ(d.inprocess_fallbacks, d.shards);
  // Every shard burned its full failure budget: max_shard_retries retries
  // each, every retry after the first failure preceded by a backoff wait.
  EXPECT_EQ(d.shard_retries, d.shards * sharded.max_shard_retries);
  EXPECT_EQ(d.backoff_waits, d.shard_retries);
  EXPECT_GT(d.backoff_total_ms, 0.0);
  EXPECT_TRUE(HasEvent(d.events, dist::ShardEvent::Kind::kShardQuarantined));
  EXPECT_TRUE(HasEvent(d.events, dist::ShardEvent::Kind::kInProcessFallback));
  EXPECT_TRUE(HasEvent(d.events, dist::ShardEvent::Kind::kBackoffWait));
}

// Persist-layer corruption inside the shard namespace: torn artifact writes
// and bit-flipped reads must resolve to a cold shard restart (recompute),
// never a crash — at multi-threaded workers, like production would run.
TEST_F(DistChaosTest, TornShardArtifactWriteResolvesToRestart) {
  GraphDatabase db = SmallDb();
  CatapultOptions base = FastOptions();
  base.threads = 4;
  CatapultResult expected = RunCatapult(db, base);
  ASSERT_TRUE(expected.ok());

  failpoint::Arm("persist.torn_write", 1);  // first artifact write per process
  CatapultResult actual = RunCatapult(db, DistOptionsOf(base, 4));
  failpoint::DisarmAll();
  ASSERT_TRUE(actual.ok());
  ExpectSameResult(expected, actual);
  EXPECT_GE(actual.execution.dist.artifacts_rejected, 1u);
}

TEST_F(DistChaosTest, BitFlippedShardArtifactReadResolvesToRestart) {
  GraphDatabase db = SmallDb();
  CatapultOptions base = FastOptions();
  base.threads = 4;
  CatapultResult expected = RunCatapult(db, base);
  ASSERT_TRUE(expected.ok());

  failpoint::Arm("persist.bit_flip", 1);  // first artifact read per process
  CatapultResult actual = RunCatapult(db, DistOptionsOf(base, 4));
  failpoint::DisarmAll();
  ASSERT_TRUE(actual.ok());
  ExpectSameResult(expected, actual);
  const dist::DistReport& d = actual.execution.dist;
  EXPECT_GE(d.artifacts_rejected + d.shard_retries, 1u);
}

// --- supervision under stop requests ----------------------------------------

TEST_F(DistTest, DeadlineDuringShardedPhaseDegradesGracefully) {
  GraphDatabase db = SmallDb(/*seed=*/5, /*n=*/80);
  CatapultOptions options = DistOptionsOf(FastOptions(), 4);
  options.deadline_ms = 30.0;  // expires somewhere inside the pipeline
  CatapultResult result = RunCatapult(db, options);
  ASSERT_TRUE(result.ok());  // partial results, never a crash
  EXPECT_TRUE(result.execution.deadline_set);
}

TEST_F(DistTest, CancellationReapsWorkersAndReturnsPartial) {
  GraphDatabase db = SmallDb(/*seed=*/5, /*n=*/80);
  CatapultOptions options = DistOptionsOf(FastOptions(), 4);
  RunContext ctx = RunContext::NoLimit();
  std::thread canceller([token = ctx.cancel_token()] {
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
    token.Cancel();
  });
  CatapultResult result = RunCatapult(db, options, ctx);
  canceller.join();
  ASSERT_TRUE(result.ok());
  // Whatever phase the cancel landed in, the run wound down cooperatively;
  // no worker process is left behind (the supervisor reaps before exiting,
  // and leaked children would trip the next fork-heavy test anyway).
}

// --- observability ----------------------------------------------------------

TEST_F(DistTest, SupervisionCountersAndReportJsonExposed) {
  GraphDatabase db = SmallDb();
  CatapultOptions options = DistOptionsOf(FastOptions(), 2);
  options.shard_heartbeat_timeout_ms = 150.0;  // ~37ms heartbeat interval
  obs::MetricsRegistry registry;
  RunContext ctx = RunContext::NoLimit().WithObservability(&registry, nullptr);
  CatapultResult result = RunCatapult(db, options, ctx);
  ASSERT_TRUE(result.ok());

  const dist::DistReport& d = result.execution.dist;
  obs::MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.counter(obs::Counter::kDistWorkersSpawned),
            d.workers_spawned);
  EXPECT_GE(snap.counter(obs::Counter::kDistWorkersSpawned), d.shards);
  EXPECT_EQ(snap.counter(obs::Counter::kDistHeartbeats), d.heartbeats);
  // Worker-side counters crossed the process fence: the workers did all the
  // CSG folding, yet the merged registry still saw it.
  EXPECT_GT(snap.counter(obs::Counter::kCsgFolds), 0u);

  // The selection report carries the supervision block for GUI layers.
  LabelMap labels;
  std::string json = SelectionReportJson(result, labels);
  EXPECT_NE(json.find("\"dist\""), std::string::npos);
  EXPECT_NE(json.find("\"workers_spawned\""), std::string::npos);
  EXPECT_NE(json.find("\"quarantined_shards\""), std::string::npos);
}

TEST_F(DistTest, EventLogRendersHumanReadably) {
  dist::ShardEvent event{dist::ShardEvent::Kind::kBackoffWait, 3,
                         "delay_ms=50"};
  std::string text = dist::ToString(event);
  EXPECT_NE(text.find("backoff_wait"), std::string::npos);
  EXPECT_NE(text.find("shard=3"), std::string::npos);
  EXPECT_NE(text.find("delay_ms=50"), std::string::npos);
}

}  // namespace
}  // namespace catapult
