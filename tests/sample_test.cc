#include "src/sample/sampling.h"

#include <gtest/gtest.h>

#include <set>

namespace catapult {
namespace {

TEST(EagerSamplingTest, PaperExampleSize) {
  // Section 4.3: rho = 0.01, eps = 0.02 -> |S_eager| = 6623.
  EagerSamplingOptions options;
  options.epsilon = 0.02;
  options.rho = 0.01;
  EXPECT_EQ(EagerSampleSize(options), 6623u);
}

TEST(EagerSamplingTest, SizeIndependentOfDatabase) {
  EagerSamplingOptions options;
  size_t size = EagerSampleSize(options);
  Rng rng1(1);
  Rng rng2(1);
  EXPECT_EQ(EagerSample(100000, options, rng1).size(), size);
  EXPECT_EQ(EagerSample(size * 10, options, rng2).size(), size);
}

TEST(EagerSamplingTest, SmallDatabasePassesThrough) {
  EagerSamplingOptions options;
  Rng rng(2);
  std::vector<GraphId> ids = EagerSample(100, options, rng);
  EXPECT_EQ(ids.size(), 100u);
}

TEST(EagerSamplingTest, SampledIdsDistinctAndInRange) {
  EagerSamplingOptions options;
  options.epsilon = 0.1;  // smaller sample (~150)
  Rng rng(3);
  std::vector<GraphId> ids = EagerSample(1000, options, rng);
  std::set<GraphId> unique(ids.begin(), ids.end());
  EXPECT_EQ(unique.size(), ids.size());
  for (GraphId id : ids) EXPECT_LT(id, 1000u);
}

TEST(EagerSamplingTest, LoweredThresholdBelowOriginal) {
  EagerSamplingOptions options;
  double lowered = LoweredSupportThreshold(0.1, 6623, options);
  EXPECT_LT(lowered, 0.1);
  EXPECT_GT(lowered, 0.0);
}

TEST(EagerSamplingTest, LoweredThresholdClamped) {
  EagerSamplingOptions options;
  options.phi = 0.0001;
  // Tiny sample would push the slack past the threshold; must stay > 0.
  double lowered = LoweredSupportThreshold(0.05, 10, options);
  EXPECT_GT(lowered, 0.0);
  EXPECT_LE(lowered, 0.05);
}

TEST(LazySamplingTest, CochranSize) {
  // z = 1.65, p = q = 0.5, e = 0.03 -> 1.65^2*0.25/0.0009 = 756.25 -> 757.
  LazySamplingOptions options;
  EXPECT_EQ(CochranSampleSize(options), 757u);
}

TEST(LazySamplingTest, PaperExampleScale) {
  // Section 4.3's example: 50K graphs, cluster of 1000 -> ~15 samples.
  LazySamplingOptions options;
  size_t size = LazySampleSize(50000, 1000, options);
  EXPECT_GE(size, 14u);
  EXPECT_LE(size, 17u);
}

TEST(LazySamplingTest, NeverExceedsCluster) {
  LazySamplingOptions options;
  EXPECT_LE(LazySampleSize(100, 50, options), 50u);
  EXPECT_GE(LazySampleSize(1000000, 3, options), 1u);
}

TEST(LazySamplingTest, SmallClustersPassThrough) {
  LazySamplingOptions options;
  options.min_cluster_size_to_sample = 10;
  std::vector<std::vector<GraphId>> clusters = {{1, 2, 3}, {4, 5}};
  Rng rng(5);
  auto sampled = LazySampleClusters(clusters, 100000, options, rng);
  EXPECT_EQ(sampled, clusters);
}

TEST(LazySamplingTest, LargeClusterShrinks) {
  LazySamplingOptions options;
  options.min_cluster_size_to_sample = 10;
  std::vector<GraphId> big(5000);
  for (size_t i = 0; i < big.size(); ++i) big[i] = static_cast<GraphId>(i);
  Rng rng(6);
  auto sampled = LazySampleClusters({big}, 100000, options, rng);
  ASSERT_EQ(sampled.size(), 1u);
  EXPECT_LT(sampled[0].size(), big.size());
  EXPECT_GE(sampled[0].size(), 1u);
  // Sampled ids must come from the cluster.
  std::set<GraphId> pool(big.begin(), big.end());
  for (GraphId id : sampled[0]) EXPECT_TRUE(pool.contains(id));
}

}  // namespace
}  // namespace catapult
