#include <gtest/gtest.h>

#include "src/core/budget.h"
#include "src/core/pattern_score.h"
#include "src/core/random_walk.h"
#include "src/core/weights.h"
#include "src/csg/csg.h"
#include "src/graph/algorithms.h"
#include "src/iso/vf2.h"

namespace catapult {
namespace {

GraphDatabase WeightsDb() {
  GraphDatabase db;
  Label C = db.labels().Intern("C");
  Label O = db.labels().Intern("O");
  Label N = db.labels().Intern("N");
  // 4 graphs: all contain C-O; half contain C-N.
  for (int i = 0; i < 4; ++i) {
    Graph g;
    VertexId c = g.AddVertex(C);
    VertexId o = g.AddVertex(O);
    g.AddEdge(c, o);
    if (i < 2) {
      VertexId n = g.AddVertex(N);
      g.AddEdge(c, n);
    }
    db.Add(std::move(g));
  }
  return db;
}

TEST(BudgetTest, NumSizesAndPerSizeCap) {
  PatternBudget b{.eta_min = 3, .eta_max = 12, .gamma = 30};
  EXPECT_EQ(b.NumSizes(), 10u);
  EXPECT_EQ(b.MaxPerSize(), 3u);
}

TEST(BudgetTest, PerSizeCapAtLeastOne) {
  PatternBudget b{.eta_min = 3, .eta_max = 12, .gamma = 5};
  EXPECT_EQ(b.MaxPerSize(), 1u);
}

TEST(BudgetTest, OpenSizesShrinkAsSelected) {
  PatternBudget b{.eta_min = 3, .eta_max = 5, .gamma = 6};
  std::vector<size_t> selected = {2, 0, 1};  // size 3 capped (cap = 2)
  std::vector<size_t> open = OpenPatternSizes(b, selected);
  EXPECT_EQ(open, (std::vector<size_t>{4, 5}));
}

TEST(BudgetTest, AllCappedReopensForRemainder) {
  PatternBudget b{.eta_min = 3, .eta_max = 5, .gamma = 7};  // cap = 2, 7 > 6
  std::vector<size_t> selected = {2, 2, 2};
  std::vector<size_t> open = OpenPatternSizes(b, selected);
  EXPECT_EQ(open.size(), 3u);  // everything reopens for the remainder
}

TEST(BudgetTest, GammaReachedClosesAll) {
  PatternBudget b{.eta_min = 3, .eta_max = 5, .gamma = 3};
  std::vector<size_t> selected = {1, 1, 1};
  EXPECT_TRUE(OpenPatternSizes(b, selected).empty());
}

TEST(EdgeLabelWeightsTest, InitialisedFromCoverage) {
  GraphDatabase db = WeightsDb();
  EdgeLabelWeights elw(db);
  Label C = db.labels().Find("C");
  Label O = db.labels().Find("O");
  Label N = db.labels().Find("N");
  EXPECT_DOUBLE_EQ(elw.Get(MakeEdgeLabelKey(C, O)), 1.0);
  EXPECT_DOUBLE_EQ(elw.Get(MakeEdgeLabelKey(C, N)), 0.5);
  EXPECT_DOUBLE_EQ(elw.Get(MakeEdgeLabelKey(O, N)), 0.0);
}

TEST(EdgeLabelWeightsTest, DecayHalves) {
  GraphDatabase db = WeightsDb();
  EdgeLabelWeights elw(db);
  Label C = db.labels().Find("C");
  Label O = db.labels().Find("O");
  Graph pattern;
  pattern.AddVertex(C);
  pattern.AddVertex(O);
  pattern.AddEdge(0, 1);
  elw.DecayForPattern(pattern);
  EXPECT_DOUBLE_EQ(elw.Get(MakeEdgeLabelKey(C, O)), 0.5);
  elw.DecayForPattern(pattern);
  EXPECT_DOUBLE_EQ(elw.Get(MakeEdgeLabelKey(C, O)), 0.25);
}

TEST(ClusterWeightsTest, ProportionalToSize) {
  ClusterWeights cw({{0, 1, 2}, {3}}, 4);
  EXPECT_DOUBLE_EQ(cw.Get(0), 0.75);
  EXPECT_DOUBLE_EQ(cw.Get(1), 0.25);
  cw.Decay(0);
  EXPECT_DOUBLE_EQ(cw.Get(0), 0.375);
  EXPECT_DOUBLE_EQ(cw.Initial(0), 0.75);
}

TEST(LabelCoverageIndexTest, PatternCoverage) {
  GraphDatabase db = WeightsDb();
  LabelCoverageIndex index(db);
  Label C = db.labels().Find("C");
  Label N = db.labels().Find("N");
  Graph cn;
  cn.AddVertex(C);
  cn.AddVertex(N);
  cn.AddEdge(0, 1);
  EXPECT_DOUBLE_EQ(index.PatternLabelCoverage(cn), 0.5);
}

TEST(LabelCoverageIndexTest, SetCoverageUnions) {
  GraphDatabase db = WeightsDb();
  LabelCoverageIndex index(db);
  Label C = db.labels().Find("C");
  Label O = db.labels().Find("O");
  Label N = db.labels().Find("N");
  Graph cn;
  cn.AddVertex(C);
  cn.AddVertex(N);
  cn.AddEdge(0, 1);
  Graph co;
  co.AddVertex(C);
  co.AddVertex(O);
  co.AddEdge(0, 1);
  EXPECT_DOUBLE_EQ(index.SetLabelCoverage({cn, co}), 1.0);
  EXPECT_DOUBLE_EQ(index.SetLabelCoverage({cn}), 0.5);
  EXPECT_DOUBLE_EQ(index.SetLabelCoverage({}), 0.0);
}

TEST(CognitiveLoadTest, PaperFormula) {
  // Triangle: |E| = 3, density 1 -> cog = 3.
  Graph triangle;
  triangle.AddVertex(0);
  triangle.AddVertex(0);
  triangle.AddVertex(0);
  triangle.AddEdge(0, 1);
  triangle.AddEdge(1, 2);
  triangle.AddEdge(2, 0);
  EXPECT_DOUBLE_EQ(CognitiveLoad(triangle), 3.0);
  EXPECT_DOUBLE_EQ(CognitiveLoadDegreeSum(triangle), 6.0);
  EXPECT_DOUBLE_EQ(CognitiveLoadAvgDegree(triangle), 2.0);
}

TEST(CognitiveLoadTest, SparserIsLighter) {
  Graph path;
  for (int i = 0; i < 4; ++i) path.AddVertex(0);
  path.AddEdge(0, 1);
  path.AddEdge(1, 2);
  path.AddEdge(2, 3);
  Graph clique;
  for (int i = 0; i < 4; ++i) clique.AddVertex(0);
  for (int i = 0; i < 4; ++i) {
    for (int j = i + 1; j < 4; ++j) {
      clique.AddEdge(static_cast<VertexId>(i), static_cast<VertexId>(j));
    }
  }
  EXPECT_LT(CognitiveLoad(path), CognitiveLoad(clique));
}

TEST(DiversityTest, EmptySetIsNeutral) {
  Graph g;
  g.AddVertex(0);
  g.AddVertex(0);
  g.AddEdge(0, 1);
  EXPECT_DOUBLE_EQ(PatternSetDiversity(g, {}), 1.0);
}

TEST(DiversityTest, MinOverSet) {
  Graph p2;
  p2.AddVertex(0);
  p2.AddVertex(0);
  p2.AddEdge(0, 1);
  Graph p3 = p2;
  p3.AddVertex(0);
  p3.AddEdge(1, 2);
  Graph p4 = p3;
  p4.AddVertex(0);
  p4.AddEdge(2, 3);
  // div(p2, {p3, p4}) = GED(p2, p3) = 2 (one vertex + one edge).
  EXPECT_DOUBLE_EQ(PatternSetDiversity(p2, {p3, p4}), 2.0);
}

TEST(DiversityTest, IdenticalPatternGivesZero) {
  Graph p;
  p.AddVertex(1);
  p.AddVertex(2);
  p.AddEdge(0, 1);
  EXPECT_DOUBLE_EQ(PatternSetDiversity(p, {p}), 0.0);
}

TEST(WeightedCsgTest, WeightsCombineGlobalAndLocal) {
  GraphDatabase db = WeightsDb();
  // Cluster = all four graphs. Summary has C-O (support 4) and C-N (2).
  ClusterSummaryGraph csg = BuildCsg(db, {0, 1, 2, 3});
  EdgeLabelWeights elw(db);
  WeightedCsg wcsg = MakeWeightedCsg(csg, elw);
  ASSERT_EQ(wcsg.edge_weights.size(), csg.NumEdges());
  Label C = db.labels().Find("C");
  Label O = db.labels().Find("O");
  for (size_t i = 0; i < csg.NumEdges(); ++i) {
    const auto& e = csg.edges()[i];
    EdgeLabelKey key =
        MakeEdgeLabelKey(csg.VertexLabel(e.u), csg.VertexLabel(e.v));
    if (key == MakeEdgeLabelKey(C, O)) {
      EXPECT_DOUBLE_EQ(wcsg.edge_weights[i], 1.0);  // 1.0 * 4/4
    } else {
      EXPECT_DOUBLE_EQ(wcsg.edge_weights[i], 0.25);  // 0.5 * 2/4
    }
  }
}

TEST(RandomWalkTest, PcpIsConnectedAndSized) {
  GraphDatabase db = WeightsDb();
  ClusterSummaryGraph csg = BuildCsg(db, {0, 1, 2, 3});
  EdgeLabelWeights elw(db);
  WeightedCsg wcsg = MakeWeightedCsg(csg, elw);
  Rng rng(4);
  Pcp pcp = GeneratePcp(wcsg, 2, rng);
  EXPECT_EQ(pcp.size(), 2u);
  Graph pattern = PatternFromCsgEdges(csg, pcp);
  EXPECT_TRUE(IsConnected(pattern));
  EXPECT_EQ(pattern.NumEdges(), 2u);
}

TEST(RandomWalkTest, PcpCapsAtCsgSize) {
  GraphDatabase db = WeightsDb();
  ClusterSummaryGraph csg = BuildCsg(db, {0, 1, 2, 3});
  EdgeLabelWeights elw(db);
  WeightedCsg wcsg = MakeWeightedCsg(csg, elw);
  Rng rng(4);
  Pcp pcp = GeneratePcp(wcsg, 50, rng);
  EXPECT_EQ(pcp.size(), csg.NumEdges());
}

TEST(RandomWalkTest, SeedEdgeIsHeaviest) {
  GraphDatabase db = WeightsDb();
  ClusterSummaryGraph csg = BuildCsg(db, {0, 1, 2, 3});
  EdgeLabelWeights elw(db);
  WeightedCsg wcsg = MakeWeightedCsg(csg, elw);
  Rng rng(4);
  Pcp pcp = GeneratePcp(wcsg, 1, rng);
  ASSERT_EQ(pcp.size(), 1u);
  // The single chosen edge must be a maximum-weight edge.
  double max_weight = 0;
  for (double w : wcsg.edge_weights) max_weight = std::max(max_weight, w);
  EXPECT_DOUBLE_EQ(wcsg.edge_weights[pcp[0]], max_weight);
}

TEST(RandomWalkTest, FcpPicksMostFrequentEdges) {
  GraphDatabase db = WeightsDb();
  ClusterSummaryGraph csg = BuildCsg(db, {0, 1, 2, 3});
  // Library: edge 0 appears twice, edge 1 once; FCP of size 1 = edge 0.
  std::vector<Pcp> library = {{0}, {0, 1}};
  Pcp fcp = GenerateFcp(csg, library, 1);
  ASSERT_EQ(fcp.size(), 1u);
  EXPECT_EQ(fcp[0], 0u);
}

TEST(RandomWalkTest, FcpIsConnected) {
  GraphDatabase db = WeightsDb();
  ClusterSummaryGraph csg = BuildCsg(db, {0, 1, 2, 3});
  EdgeLabelWeights elw(db);
  WeightedCsg wcsg = MakeWeightedCsg(csg, elw);
  Rng rng(5);
  std::vector<Pcp> library;
  for (int i = 0; i < 20; ++i) library.push_back(GeneratePcp(wcsg, 2, rng));
  Pcp fcp = GenerateFcp(csg, library, 2);
  ASSERT_FALSE(fcp.empty());
  EXPECT_TRUE(IsConnected(PatternFromCsgEdges(csg, fcp)));
}

TEST(CoverageTest, CcovSumsCoveredWeights) {
  GraphDatabase db = WeightsDb();
  std::vector<std::vector<GraphId>> clusters = {{0, 1}, {2, 3}};
  auto csgs = BuildCsgs(db, clusters);
  std::vector<Graph> summaries;
  for (const auto& c : csgs) summaries.push_back(c.ToGraph());
  ClusterWeights cw(clusters, db.size());
  Label C = db.labels().Find("C");
  Label N = db.labels().Find("N");
  Graph cn;
  cn.AddVertex(C);
  cn.AddVertex(N);
  cn.AddEdge(0, 1);
  // C-N occurs only in graphs 0,1 -> only cluster 0's summary contains it.
  EXPECT_DOUBLE_EQ(ClusterCoverage(cn, summaries, cw), 0.5);
  Label O = db.labels().Find("O");
  Graph co;
  co.AddVertex(C);
  co.AddVertex(O);
  co.AddEdge(0, 1);
  EXPECT_DOUBLE_EQ(ClusterCoverage(co, summaries, cw), 1.0);
}

}  // namespace
}  // namespace catapult
