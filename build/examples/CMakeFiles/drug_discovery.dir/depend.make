# Empty dependencies file for drug_discovery.
# This may be replaced when dependencies are built.
