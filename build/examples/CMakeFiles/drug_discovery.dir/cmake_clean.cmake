file(REMOVE_RECURSE
  "CMakeFiles/drug_discovery.dir/drug_discovery.cpp.o"
  "CMakeFiles/drug_discovery.dir/drug_discovery.cpp.o.d"
  "drug_discovery"
  "drug_discovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drug_discovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
