# Empty dependencies file for catapult_cli.
# This may be replaced when dependencies are built.
