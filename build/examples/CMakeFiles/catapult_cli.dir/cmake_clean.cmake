file(REMOVE_RECURSE
  "CMakeFiles/catapult_cli.dir/catapult_cli.cpp.o"
  "CMakeFiles/catapult_cli.dir/catapult_cli.cpp.o.d"
  "catapult_cli"
  "catapult_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/catapult_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
