file(REMOVE_RECURSE
  "CMakeFiles/incremental_budget.dir/incremental_budget.cpp.o"
  "CMakeFiles/incremental_budget.dir/incremental_budget.cpp.o.d"
  "incremental_budget"
  "incremental_budget.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/incremental_budget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
