# Empty dependencies file for incremental_budget.
# This may be replaced when dependencies are built.
