file(REMOVE_RECURSE
  "CMakeFiles/substructure_search.dir/substructure_search.cpp.o"
  "CMakeFiles/substructure_search.dir/substructure_search.cpp.o.d"
  "substructure_search"
  "substructure_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/substructure_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
