# Empty compiler generated dependencies file for substructure_search.
# This may be replaced when dependencies are built.
