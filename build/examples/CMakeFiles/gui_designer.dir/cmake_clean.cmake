file(REMOVE_RECURSE
  "CMakeFiles/gui_designer.dir/gui_designer.cpp.o"
  "CMakeFiles/gui_designer.dir/gui_designer.cpp.o.d"
  "gui_designer"
  "gui_designer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gui_designer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
