# Empty compiler generated dependencies file for gui_designer.
# This may be replaced when dependencies are built.
