file(REMOVE_RECURSE
  "libcatapult.a"
)
