# Empty compiler generated dependencies file for catapult.
# This may be replaced when dependencies are built.
