
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/agglomerative.cc" "src/CMakeFiles/catapult.dir/cluster/agglomerative.cc.o" "gcc" "src/CMakeFiles/catapult.dir/cluster/agglomerative.cc.o.d"
  "/root/repo/src/cluster/facility_location.cc" "src/CMakeFiles/catapult.dir/cluster/facility_location.cc.o" "gcc" "src/CMakeFiles/catapult.dir/cluster/facility_location.cc.o.d"
  "/root/repo/src/cluster/feature_vectors.cc" "src/CMakeFiles/catapult.dir/cluster/feature_vectors.cc.o" "gcc" "src/CMakeFiles/catapult.dir/cluster/feature_vectors.cc.o.d"
  "/root/repo/src/cluster/fine_clustering.cc" "src/CMakeFiles/catapult.dir/cluster/fine_clustering.cc.o" "gcc" "src/CMakeFiles/catapult.dir/cluster/fine_clustering.cc.o.d"
  "/root/repo/src/cluster/kmeans.cc" "src/CMakeFiles/catapult.dir/cluster/kmeans.cc.o" "gcc" "src/CMakeFiles/catapult.dir/cluster/kmeans.cc.o.d"
  "/root/repo/src/cluster/pipeline.cc" "src/CMakeFiles/catapult.dir/cluster/pipeline.cc.o" "gcc" "src/CMakeFiles/catapult.dir/cluster/pipeline.cc.o.d"
  "/root/repo/src/core/budget.cc" "src/CMakeFiles/catapult.dir/core/budget.cc.o" "gcc" "src/CMakeFiles/catapult.dir/core/budget.cc.o.d"
  "/root/repo/src/core/catapult.cc" "src/CMakeFiles/catapult.dir/core/catapult.cc.o" "gcc" "src/CMakeFiles/catapult.dir/core/catapult.cc.o.d"
  "/root/repo/src/core/maintenance.cc" "src/CMakeFiles/catapult.dir/core/maintenance.cc.o" "gcc" "src/CMakeFiles/catapult.dir/core/maintenance.cc.o.d"
  "/root/repo/src/core/pattern_score.cc" "src/CMakeFiles/catapult.dir/core/pattern_score.cc.o" "gcc" "src/CMakeFiles/catapult.dir/core/pattern_score.cc.o.d"
  "/root/repo/src/core/random_walk.cc" "src/CMakeFiles/catapult.dir/core/random_walk.cc.o" "gcc" "src/CMakeFiles/catapult.dir/core/random_walk.cc.o.d"
  "/root/repo/src/core/report.cc" "src/CMakeFiles/catapult.dir/core/report.cc.o" "gcc" "src/CMakeFiles/catapult.dir/core/report.cc.o.d"
  "/root/repo/src/core/selector.cc" "src/CMakeFiles/catapult.dir/core/selector.cc.o" "gcc" "src/CMakeFiles/catapult.dir/core/selector.cc.o.d"
  "/root/repo/src/core/weights.cc" "src/CMakeFiles/catapult.dir/core/weights.cc.o" "gcc" "src/CMakeFiles/catapult.dir/core/weights.cc.o.d"
  "/root/repo/src/csg/csg.cc" "src/CMakeFiles/catapult.dir/csg/csg.cc.o" "gcc" "src/CMakeFiles/catapult.dir/csg/csg.cc.o.d"
  "/root/repo/src/data/molecule_generator.cc" "src/CMakeFiles/catapult.dir/data/molecule_generator.cc.o" "gcc" "src/CMakeFiles/catapult.dir/data/molecule_generator.cc.o.d"
  "/root/repo/src/data/query_generator.cc" "src/CMakeFiles/catapult.dir/data/query_generator.cc.o" "gcc" "src/CMakeFiles/catapult.dir/data/query_generator.cc.o.d"
  "/root/repo/src/formulate/cover.cc" "src/CMakeFiles/catapult.dir/formulate/cover.cc.o" "gcc" "src/CMakeFiles/catapult.dir/formulate/cover.cc.o.d"
  "/root/repo/src/formulate/evaluate.cc" "src/CMakeFiles/catapult.dir/formulate/evaluate.cc.o" "gcc" "src/CMakeFiles/catapult.dir/formulate/evaluate.cc.o.d"
  "/root/repo/src/formulate/gui.cc" "src/CMakeFiles/catapult.dir/formulate/gui.cc.o" "gcc" "src/CMakeFiles/catapult.dir/formulate/gui.cc.o.d"
  "/root/repo/src/formulate/qft.cc" "src/CMakeFiles/catapult.dir/formulate/qft.cc.o" "gcc" "src/CMakeFiles/catapult.dir/formulate/qft.cc.o.d"
  "/root/repo/src/formulate/session.cc" "src/CMakeFiles/catapult.dir/formulate/session.cc.o" "gcc" "src/CMakeFiles/catapult.dir/formulate/session.cc.o.d"
  "/root/repo/src/formulate/steps.cc" "src/CMakeFiles/catapult.dir/formulate/steps.cc.o" "gcc" "src/CMakeFiles/catapult.dir/formulate/steps.cc.o.d"
  "/root/repo/src/graph/algorithms.cc" "src/CMakeFiles/catapult.dir/graph/algorithms.cc.o" "gcc" "src/CMakeFiles/catapult.dir/graph/algorithms.cc.o.d"
  "/root/repo/src/graph/graph.cc" "src/CMakeFiles/catapult.dir/graph/graph.cc.o" "gcc" "src/CMakeFiles/catapult.dir/graph/graph.cc.o.d"
  "/root/repo/src/graph/graph_database.cc" "src/CMakeFiles/catapult.dir/graph/graph_database.cc.o" "gcc" "src/CMakeFiles/catapult.dir/graph/graph_database.cc.o.d"
  "/root/repo/src/graph/io.cc" "src/CMakeFiles/catapult.dir/graph/io.cc.o" "gcc" "src/CMakeFiles/catapult.dir/graph/io.cc.o.d"
  "/root/repo/src/graph/label_map.cc" "src/CMakeFiles/catapult.dir/graph/label_map.cc.o" "gcc" "src/CMakeFiles/catapult.dir/graph/label_map.cc.o.d"
  "/root/repo/src/iso/ged.cc" "src/CMakeFiles/catapult.dir/iso/ged.cc.o" "gcc" "src/CMakeFiles/catapult.dir/iso/ged.cc.o.d"
  "/root/repo/src/iso/ged_bipartite.cc" "src/CMakeFiles/catapult.dir/iso/ged_bipartite.cc.o" "gcc" "src/CMakeFiles/catapult.dir/iso/ged_bipartite.cc.o.d"
  "/root/repo/src/iso/mcs.cc" "src/CMakeFiles/catapult.dir/iso/mcs.cc.o" "gcc" "src/CMakeFiles/catapult.dir/iso/mcs.cc.o.d"
  "/root/repo/src/iso/vf2.cc" "src/CMakeFiles/catapult.dir/iso/vf2.cc.o" "gcc" "src/CMakeFiles/catapult.dir/iso/vf2.cc.o.d"
  "/root/repo/src/mining/frequent_edges.cc" "src/CMakeFiles/catapult.dir/mining/frequent_edges.cc.o" "gcc" "src/CMakeFiles/catapult.dir/mining/frequent_edges.cc.o.d"
  "/root/repo/src/mining/subgraph_miner.cc" "src/CMakeFiles/catapult.dir/mining/subgraph_miner.cc.o" "gcc" "src/CMakeFiles/catapult.dir/mining/subgraph_miner.cc.o.d"
  "/root/repo/src/mining/subtree_miner.cc" "src/CMakeFiles/catapult.dir/mining/subtree_miner.cc.o" "gcc" "src/CMakeFiles/catapult.dir/mining/subtree_miner.cc.o.d"
  "/root/repo/src/sample/sampling.cc" "src/CMakeFiles/catapult.dir/sample/sampling.cc.o" "gcc" "src/CMakeFiles/catapult.dir/sample/sampling.cc.o.d"
  "/root/repo/src/search/search_engine.cc" "src/CMakeFiles/catapult.dir/search/search_engine.cc.o" "gcc" "src/CMakeFiles/catapult.dir/search/search_engine.cc.o.d"
  "/root/repo/src/tree/canonical.cc" "src/CMakeFiles/catapult.dir/tree/canonical.cc.o" "gcc" "src/CMakeFiles/catapult.dir/tree/canonical.cc.o.d"
  "/root/repo/src/util/bitset.cc" "src/CMakeFiles/catapult.dir/util/bitset.cc.o" "gcc" "src/CMakeFiles/catapult.dir/util/bitset.cc.o.d"
  "/root/repo/src/util/rng.cc" "src/CMakeFiles/catapult.dir/util/rng.cc.o" "gcc" "src/CMakeFiles/catapult.dir/util/rng.cc.o.d"
  "/root/repo/src/util/stats.cc" "src/CMakeFiles/catapult.dir/util/stats.cc.o" "gcc" "src/CMakeFiles/catapult.dir/util/stats.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
