# Empty compiler generated dependencies file for catapult_tests.
# This may be replaced when dependencies are built.
