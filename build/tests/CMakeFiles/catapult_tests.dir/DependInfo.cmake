
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/budget_dist_test.cc" "tests/CMakeFiles/catapult_tests.dir/budget_dist_test.cc.o" "gcc" "tests/CMakeFiles/catapult_tests.dir/budget_dist_test.cc.o.d"
  "/root/repo/tests/cluster_test.cc" "tests/CMakeFiles/catapult_tests.dir/cluster_test.cc.o" "gcc" "tests/CMakeFiles/catapult_tests.dir/cluster_test.cc.o.d"
  "/root/repo/tests/core_test.cc" "tests/CMakeFiles/catapult_tests.dir/core_test.cc.o" "gcc" "tests/CMakeFiles/catapult_tests.dir/core_test.cc.o.d"
  "/root/repo/tests/csg_test.cc" "tests/CMakeFiles/catapult_tests.dir/csg_test.cc.o" "gcc" "tests/CMakeFiles/catapult_tests.dir/csg_test.cc.o.d"
  "/root/repo/tests/data_test.cc" "tests/CMakeFiles/catapult_tests.dir/data_test.cc.o" "gcc" "tests/CMakeFiles/catapult_tests.dir/data_test.cc.o.d"
  "/root/repo/tests/extensions_test.cc" "tests/CMakeFiles/catapult_tests.dir/extensions_test.cc.o" "gcc" "tests/CMakeFiles/catapult_tests.dir/extensions_test.cc.o.d"
  "/root/repo/tests/formulate_test.cc" "tests/CMakeFiles/catapult_tests.dir/formulate_test.cc.o" "gcc" "tests/CMakeFiles/catapult_tests.dir/formulate_test.cc.o.d"
  "/root/repo/tests/ged_bipartite_test.cc" "tests/CMakeFiles/catapult_tests.dir/ged_bipartite_test.cc.o" "gcc" "tests/CMakeFiles/catapult_tests.dir/ged_bipartite_test.cc.o.d"
  "/root/repo/tests/graph_test.cc" "tests/CMakeFiles/catapult_tests.dir/graph_test.cc.o" "gcc" "tests/CMakeFiles/catapult_tests.dir/graph_test.cc.o.d"
  "/root/repo/tests/integration_test.cc" "tests/CMakeFiles/catapult_tests.dir/integration_test.cc.o" "gcc" "tests/CMakeFiles/catapult_tests.dir/integration_test.cc.o.d"
  "/root/repo/tests/invariants_test.cc" "tests/CMakeFiles/catapult_tests.dir/invariants_test.cc.o" "gcc" "tests/CMakeFiles/catapult_tests.dir/invariants_test.cc.o.d"
  "/root/repo/tests/iso_test.cc" "tests/CMakeFiles/catapult_tests.dir/iso_test.cc.o" "gcc" "tests/CMakeFiles/catapult_tests.dir/iso_test.cc.o.d"
  "/root/repo/tests/maintenance_test.cc" "tests/CMakeFiles/catapult_tests.dir/maintenance_test.cc.o" "gcc" "tests/CMakeFiles/catapult_tests.dir/maintenance_test.cc.o.d"
  "/root/repo/tests/mining_test.cc" "tests/CMakeFiles/catapult_tests.dir/mining_test.cc.o" "gcc" "tests/CMakeFiles/catapult_tests.dir/mining_test.cc.o.d"
  "/root/repo/tests/plan_execution_test.cc" "tests/CMakeFiles/catapult_tests.dir/plan_execution_test.cc.o" "gcc" "tests/CMakeFiles/catapult_tests.dir/plan_execution_test.cc.o.d"
  "/root/repo/tests/property_test.cc" "tests/CMakeFiles/catapult_tests.dir/property_test.cc.o" "gcc" "tests/CMakeFiles/catapult_tests.dir/property_test.cc.o.d"
  "/root/repo/tests/sample_test.cc" "tests/CMakeFiles/catapult_tests.dir/sample_test.cc.o" "gcc" "tests/CMakeFiles/catapult_tests.dir/sample_test.cc.o.d"
  "/root/repo/tests/search_test.cc" "tests/CMakeFiles/catapult_tests.dir/search_test.cc.o" "gcc" "tests/CMakeFiles/catapult_tests.dir/search_test.cc.o.d"
  "/root/repo/tests/selector_test.cc" "tests/CMakeFiles/catapult_tests.dir/selector_test.cc.o" "gcc" "tests/CMakeFiles/catapult_tests.dir/selector_test.cc.o.d"
  "/root/repo/tests/session_test.cc" "tests/CMakeFiles/catapult_tests.dir/session_test.cc.o" "gcc" "tests/CMakeFiles/catapult_tests.dir/session_test.cc.o.d"
  "/root/repo/tests/tree_test.cc" "tests/CMakeFiles/catapult_tests.dir/tree_test.cc.o" "gcc" "tests/CMakeFiles/catapult_tests.dir/tree_test.cc.o.d"
  "/root/repo/tests/util_test.cc" "tests/CMakeFiles/catapult_tests.dir/util_test.cc.o" "gcc" "tests/CMakeFiles/catapult_tests.dir/util_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/catapult.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
