file(REMOVE_RECURSE
  "CMakeFiles/exp08_vary_pattern_size.dir/exp08_vary_pattern_size.cc.o"
  "CMakeFiles/exp08_vary_pattern_size.dir/exp08_vary_pattern_size.cc.o.d"
  "exp08_vary_pattern_size"
  "exp08_vary_pattern_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp08_vary_pattern_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
