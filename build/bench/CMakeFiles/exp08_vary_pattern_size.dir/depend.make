# Empty dependencies file for exp08_vary_pattern_size.
# This may be replaced when dependencies are built.
