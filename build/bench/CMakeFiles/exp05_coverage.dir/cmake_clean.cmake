file(REMOVE_RECURSE
  "CMakeFiles/exp05_coverage.dir/exp05_coverage.cc.o"
  "CMakeFiles/exp05_coverage.dir/exp05_coverage.cc.o.d"
  "exp05_coverage"
  "exp05_coverage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp05_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
