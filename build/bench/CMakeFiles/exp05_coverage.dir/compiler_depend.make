# Empty compiler generated dependencies file for exp05_coverage.
# This may be replaced when dependencies are built.
