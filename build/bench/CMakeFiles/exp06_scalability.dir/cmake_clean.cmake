file(REMOVE_RECURSE
  "CMakeFiles/exp06_scalability.dir/exp06_scalability.cc.o"
  "CMakeFiles/exp06_scalability.dir/exp06_scalability.cc.o.d"
  "exp06_scalability"
  "exp06_scalability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp06_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
