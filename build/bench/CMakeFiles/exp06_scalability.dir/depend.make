# Empty dependencies file for exp06_scalability.
# This may be replaced when dependencies are built.
