# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for exp07_vary_num_patterns.
