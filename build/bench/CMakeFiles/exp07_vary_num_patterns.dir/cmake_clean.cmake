file(REMOVE_RECURSE
  "CMakeFiles/exp07_vary_num_patterns.dir/exp07_vary_num_patterns.cc.o"
  "CMakeFiles/exp07_vary_num_patterns.dir/exp07_vary_num_patterns.cc.o.d"
  "exp07_vary_num_patterns"
  "exp07_vary_num_patterns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp07_vary_num_patterns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
