# Empty compiler generated dependencies file for exp07_vary_num_patterns.
# This may be replaced when dependencies are built.
