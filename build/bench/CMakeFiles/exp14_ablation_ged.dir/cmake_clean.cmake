file(REMOVE_RECURSE
  "CMakeFiles/exp14_ablation_ged.dir/exp14_ablation_ged.cc.o"
  "CMakeFiles/exp14_ablation_ged.dir/exp14_ablation_ged.cc.o.d"
  "exp14_ablation_ged"
  "exp14_ablation_ged.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp14_ablation_ged.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
