# Empty dependencies file for exp14_ablation_ged.
# This may be replaced when dependencies are built.
