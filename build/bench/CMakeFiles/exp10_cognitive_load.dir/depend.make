# Empty dependencies file for exp10_cognitive_load.
# This may be replaced when dependencies are built.
