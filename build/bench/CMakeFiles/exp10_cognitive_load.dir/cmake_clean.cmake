file(REMOVE_RECURSE
  "CMakeFiles/exp10_cognitive_load.dir/exp10_cognitive_load.cc.o"
  "CMakeFiles/exp10_cognitive_load.dir/exp10_cognitive_load.cc.o.d"
  "exp10_cognitive_load"
  "exp10_cognitive_load.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp10_cognitive_load.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
