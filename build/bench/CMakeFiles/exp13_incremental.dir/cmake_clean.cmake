file(REMOVE_RECURSE
  "CMakeFiles/exp13_incremental.dir/exp13_incremental.cc.o"
  "CMakeFiles/exp13_incremental.dir/exp13_incremental.cc.o.d"
  "exp13_incremental"
  "exp13_incremental.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp13_incremental.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
