# Empty dependencies file for exp13_incremental.
# This may be replaced when dependencies are built.
