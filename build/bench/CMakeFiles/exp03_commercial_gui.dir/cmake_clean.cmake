file(REMOVE_RECURSE
  "CMakeFiles/exp03_commercial_gui.dir/exp03_commercial_gui.cc.o"
  "CMakeFiles/exp03_commercial_gui.dir/exp03_commercial_gui.cc.o.d"
  "exp03_commercial_gui"
  "exp03_commercial_gui.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp03_commercial_gui.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
