# Empty compiler generated dependencies file for exp03_commercial_gui.
# This may be replaced when dependencies are built.
