file(REMOVE_RECURSE
  "CMakeFiles/exp02_sampling.dir/exp02_sampling.cc.o"
  "CMakeFiles/exp02_sampling.dir/exp02_sampling.cc.o.d"
  "exp02_sampling"
  "exp02_sampling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp02_sampling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
