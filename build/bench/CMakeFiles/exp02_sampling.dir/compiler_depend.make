# Empty compiler generated dependencies file for exp02_sampling.
# This may be replaced when dependencies are built.
