# Empty dependencies file for exp09_frequent_baseline.
# This may be replaced when dependencies are built.
