file(REMOVE_RECURSE
  "CMakeFiles/exp09_frequent_baseline.dir/exp09_frequent_baseline.cc.o"
  "CMakeFiles/exp09_frequent_baseline.dir/exp09_frequent_baseline.cc.o.d"
  "exp09_frequent_baseline"
  "exp09_frequent_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp09_frequent_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
