# Empty dependencies file for exp12_ablation_walks.
# This may be replaced when dependencies are built.
