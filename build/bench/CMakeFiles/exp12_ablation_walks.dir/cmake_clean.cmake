file(REMOVE_RECURSE
  "CMakeFiles/exp12_ablation_walks.dir/exp12_ablation_walks.cc.o"
  "CMakeFiles/exp12_ablation_walks.dir/exp12_ablation_walks.cc.o.d"
  "exp12_ablation_walks"
  "exp12_ablation_walks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp12_ablation_walks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
