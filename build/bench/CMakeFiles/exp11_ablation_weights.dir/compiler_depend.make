# Empty compiler generated dependencies file for exp11_ablation_weights.
# This may be replaced when dependencies are built.
