file(REMOVE_RECURSE
  "CMakeFiles/exp11_ablation_weights.dir/exp11_ablation_weights.cc.o"
  "CMakeFiles/exp11_ablation_weights.dir/exp11_ablation_weights.cc.o.d"
  "exp11_ablation_weights"
  "exp11_ablation_weights.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp11_ablation_weights.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
