file(REMOVE_RECURSE
  "CMakeFiles/exp04_user_study.dir/exp04_user_study.cc.o"
  "CMakeFiles/exp04_user_study.dir/exp04_user_study.cc.o.d"
  "exp04_user_study"
  "exp04_user_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp04_user_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
