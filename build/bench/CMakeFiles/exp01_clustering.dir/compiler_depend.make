# Empty compiler generated dependencies file for exp01_clustering.
# This may be replaced when dependencies are built.
