file(REMOVE_RECURSE
  "CMakeFiles/exp01_clustering.dir/exp01_clustering.cc.o"
  "CMakeFiles/exp01_clustering.dir/exp01_clustering.cc.o.d"
  "exp01_clustering"
  "exp01_clustering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp01_clustering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
