#!/usr/bin/env bash
# Stress + drain smoke for the resident pattern-selection service
# (DESIGN.md §13), run by the chaos-smoke CI job:
#
#   1. generate a database, compute the reference panel with a one-shot
#      `catapult_cli mine` run;
#   2. start catapult_serve on it and fan concurrent catapult_client
#      requests at it (cached and --bypass-cache alike) — every served
#      panel must be byte-identical to the one-shot reference;
#   3. scrape the --admin-listen endpoint while those clients are in
#      flight: /metrics must be valid Prometheus text exposition
#      (scripts/check_promtext.py), /statusz valid JSON, /healthz "ok";
#   4. kill -TERM the server while a background client loop keeps it under
#      load, and assert the drain contract: exit status 0, valid metrics
#      JSON with the serve.* block, a well-formed JSONL --request-log
#      covering every request, and the socket file unlinked.
#
# Usage: scripts/serve_stress.sh [BUILD_DIR]   (default: build)

set -euo pipefail

BUILD_DIR=${1:-build}
CLI=$BUILD_DIR/examples/catapult_cli
SERVE=$BUILD_DIR/examples/catapult_serve
CLIENT=$BUILD_DIR/examples/catapult_client
for bin in "$CLI" "$SERVE" "$CLIENT"; do
  [ -x "$bin" ] || { echo "missing binary: $bin" >&2; exit 1; }
done

WORK=$(mktemp -d)
SERVER_PID=
cleanup() {
  [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

SOCK=$WORK/serve.sock
ADMIN=$WORK/admin.sock
PROMTEXT=$(dirname "$0")/check_promtext.py

echo "== reference: one-shot CLI run"
"$CLI" generate --out "$WORK/db.txt" --graphs 60 --seed 11
"$CLI" mine --db "$WORK/db.txt" --out "$WORK/one_shot.txt" > /dev/null

echo "== start catapult_serve"
"$SERVE" --db "$WORK/db.txt" --socket "$SOCK" --workers 2 --max-queue 8 \
  --metrics-out "$WORK/metrics.json" \
  --admin-listen "unix:$ADMIN" --request-log "$WORK/requests.jsonl" \
  --slow-request-ms 1 \
  > "$WORK/serve.out" 2> "$WORK/serve.err" &
SERVER_PID=$!
for _ in $(seq 1 300); do
  grep -q "listening on" "$WORK/serve.out" 2>/dev/null && break
  kill -0 "$SERVER_PID" 2>/dev/null || {
    echo "server died during startup:" >&2
    cat "$WORK/serve.err" >&2
    exit 1
  }
  sleep 0.1
done
grep -q "listening on" "$WORK/serve.out"

echo "== liveness probe"
"$CLIENT" ping --socket "$SOCK"

echo "== concurrent clients (cached and bypass-cache)"
CLIENT_PIDS=()
for i in $(seq 1 6); do
  flags=()
  if [ $((i % 2)) -eq 0 ]; then flags+=(--bypass-cache); fi
  "$CLIENT" mine --socket "$SOCK" --out "$WORK/panel_$i.txt" "${flags[@]}" \
    > "$WORK/client_$i.log" 2>&1 &
  CLIENT_PIDS+=("$!")
done
echo "== scrape the admin endpoint mid-flight"
# Requests are still in flight here; the scrape must neither block on nor
# corrupt them (the admin endpoint runs on its own listener + thread).
python3 "$PROMTEXT" scrape "unix:$ADMIN" /metrics > "$WORK/prom.txt"
python3 "$PROMTEXT" validate "$WORK/prom.txt"
grep -q "^catapult_serve_requests " "$WORK/prom.txt"
python3 "$PROMTEXT" scrape "unix:$ADMIN" /statusz | python3 -m json.tool \
  > /dev/null
python3 "$PROMTEXT" scrape "unix:$ADMIN" /healthz | grep -q "ok"

for pid in "${CLIENT_PIDS[@]}"; do wait "$pid"; done
for i in $(seq 1 6); do
  # The acceptance bar: a served panel is byte-identical to the one-shot
  # CLI panel for the same database, seed, and budget.
  diff "$WORK/one_shot.txt" "$WORK/panel_$i.txt"
done
echo "   6/6 panels bit-identical to the one-shot run"

echo "== kill -TERM under load, assert clean drain"
(
  # Keep requests arriving while the server drains; sheds (exit 3) and
  # connection failures (exit 1) are the expected outcome here.
  for _ in $(seq 1 50); do
    "$CLIENT" mine --socket "$SOCK" > /dev/null 2>&1 || true
  done
) &
LOAD_PID=$!
sleep 0.3
kill -TERM "$SERVER_PID"
SERVER_RC=0
wait "$SERVER_PID" || SERVER_RC=$?
SERVER_PID=
wait "$LOAD_PID" 2>/dev/null || true

[ "$SERVER_RC" -eq 0 ] || {
  echo "server exited $SERVER_RC after SIGTERM (want 0):" >&2
  cat "$WORK/serve.err" >&2
  exit 1
}
python3 -m json.tool "$WORK/metrics.json" > /dev/null
grep -q '"serve.responses"' "$WORK/metrics.json"
grep -q '"serve.accepted"' "$WORK/metrics.json"
[ ! -e "$SOCK" ] || { echo "socket not unlinked on drain" >&2; exit 1; }

echo "== request log: one well-formed JSONL line per request"
python3 - "$WORK/requests.jsonl" <<'PYEOF'
import json, sys
lines = [l for l in open(sys.argv[1], encoding="utf-8") if l.strip()]
assert len(lines) >= 6, f"expected >=6 request-log lines, got {len(lines)}"
ids = set()
for line in lines:
    ev = json.loads(line)
    for key in ("request_id", "budget", "outcome", "queue_wait_ms",
                "run_ms", "worker", "slow"):
        assert key in ev, f"missing {key!r}: {line!r}"
    assert ev["outcome"] in ("ok", "cache_hit", "shed", "error", "degraded")
    ids.add(ev["request_id"])
assert len(ids) == len(lines), "request ids are not unique"
print(f"   {len(lines)} request-log lines, all ids unique")
PYEOF

echo "serve stress: OK (clean drain, metrics valid, admin scraped," \
  "request log well-formed, socket unlinked)"
