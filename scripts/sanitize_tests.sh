#!/usr/bin/env bash
# Second ctest configuration: build and run the test suite under
# AddressSanitizer + UndefinedBehaviorSanitizer.
#
#   scripts/sanitize_tests.sh [build-dir] [extra ctest args...]
#
# Uses build-sanitize/ by default so the instrumented tree never collides
# with the regular build/.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo/build-sanitize}"
shift || true

cmake -B "$build_dir" -S "$repo" \
  -DCATAPULT_SANITIZE="address;undefined" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$build_dir" -j "$(nproc)"
ctest --test-dir "$build_dir" --output-on-failure "$@"
