#!/usr/bin/env bash
# Sanitizer ctest configurations.
#
#   scripts/sanitize_tests.sh [flavor] [build-dir] [extra ctest args...]
#
# Flavors:
#   asan (default) — AddressSanitizer + UndefinedBehaviorSanitizer in
#                    build-sanitize/; the whole suite.
#   tsan           — ThreadSanitizer in build-tsan/ with CATAPULT_THREADS=4,
#                    so every pool-aware phase actually runs multi-threaded
#                    under the race detector.
#
# For backwards compatibility a first argument that is not a flavor name is
# treated as the build dir of the asan flavor.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"

flavor="asan"
case "${1:-}" in
  asan|tsan)
    flavor="$1"
    shift
    ;;
esac

if [[ "$flavor" == "tsan" ]]; then
  build_dir="${1:-$repo/build-tsan}"
  sanitize="thread"
else
  build_dir="${1:-$repo/build-sanitize}"
  sanitize="address;undefined"
fi
shift || true

cmake -B "$build_dir" -S "$repo" \
  -DCATAPULT_SANITIZE="$sanitize" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$build_dir" -j "$(nproc)"

if [[ "$flavor" == "tsan" ]]; then
  # Force the auto thread count to 4 so ParallelFor regions race for real;
  # TSAN_OPTIONS makes any reported race fail the run.
  CATAPULT_THREADS=4 TSAN_OPTIONS="halt_on_error=1" \
    ctest --test-dir "$build_dir" --output-on-failure "$@"
else
  ctest --test-dir "$build_dir" --output-on-failure "$@"
fi
