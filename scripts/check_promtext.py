#!/usr/bin/env python3
"""Scrape and validate the admin endpoint's Prometheus text exposition.

Two subcommands, so shell smokes stay one-liners:

  check_promtext.py scrape ADDR PATH
      Connect to ADDR ("unix:PATH" or "tcp:HOST:PORT"), issue an HTTP/1.0
      GET for PATH against the line-oriented admin endpoint
      (src/obs/admin.h), and print the response body to stdout. Exits 1 on
      connect failure or a non-200 status.

  check_promtext.py validate [FILE]
      Validate Prometheus text exposition (from FILE or stdin) as rendered
      by obs::RenderPrometheusText: name syntax, TYPE-before-samples,
      histogram invariants (cumulative buckets, +Inf == _count, _sum/_count
      present), and float-parseable values. Exits 1 with a line-numbered
      message on the first violation.

Used by scripts/serve_stress.sh to prove /metrics stays parseable while the
server is under load, and usable by hand against any --admin-listen.
"""

import re
import socket
import sys

NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
# A sample line: name, optional {labels}, one value. The admin endpoint
# never emits timestamps.
SAMPLE_RE = re.compile(r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})?\s+(\S+)$")
LABEL_RE = re.compile(r'^([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"$')
TYPES = {"counter", "gauge", "histogram", "untyped", "summary"}


def fail(msg):
    print(f"check_promtext: {msg}", file=sys.stderr)
    sys.exit(1)


def scrape(addr, path):
    if addr.startswith("unix:"):
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        target = addr[len("unix:"):]
    elif addr.startswith("tcp:"):
        host, _, port = addr[len("tcp:"):].rpartition(":")
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        target = (host, int(port))
    else:
        fail(f"bad address {addr!r} (want unix:PATH or tcp:HOST:PORT)")
    sock.settimeout(10.0)
    try:
        sock.connect(target)
        sock.sendall(f"GET {path} HTTP/1.0\r\n\r\n".encode())
        raw = b""
        while chunk := sock.recv(65536):
            raw += chunk
    except OSError as e:
        fail(f"scrape {addr}{path}: {e}")
    finally:
        sock.close()
    head, sep, body = raw.partition(b"\r\n\r\n")
    if not sep:
        fail(f"scrape {addr}{path}: no header/body separator in reply")
    status = head.split(b"\r\n", 1)[0].decode(errors="replace")
    if " 200 " not in status + " ":
        fail(f"scrape {addr}{path}: status {status!r}")
    sys.stdout.write(body.decode(errors="replace"))


def parse_value(lineno, text):
    if text == "+Inf":
        return float("inf")
    try:
        return float(text)
    except ValueError:
        fail(f"line {lineno}: unparseable value {text!r}")


def check_histogram(name, series):
    """series: list of (lineno, labels-dict-or-None, suffix, value)."""
    buckets, total_sum, count = [], None, None
    for lineno, labels, suffix, value in series:
        if suffix == "_bucket":
            if labels is None or "le" not in labels:
                fail(f"line {lineno}: {name}_bucket without an le label")
            buckets.append((lineno, labels["le"], value))
        elif suffix == "_sum":
            total_sum = value
        elif suffix == "_count":
            count = value
    if not buckets:
        fail(f"histogram {name} has no _bucket samples")
    if total_sum is None or count is None:
        fail(f"histogram {name} is missing _sum or _count")
    prev = -1.0
    prev_edge = float("-inf")
    for lineno, le, value in buckets:
        edge = parse_value(lineno, le)
        if edge <= prev_edge:
            fail(f"line {lineno}: {name} bucket edges not increasing")
        if value < prev:
            fail(f"line {lineno}: {name} cumulative bucket counts decrease")
        prev, prev_edge = value, edge
    if prev_edge != float("inf"):
        fail(f"histogram {name} has no +Inf bucket")
    if buckets[-1][2] != count:
        fail(f"histogram {name}: +Inf bucket {buckets[-1][2]} != _count {count}")


def base_family(name, typed):
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix) and name[: -len(suffix)] in typed:
            return name[: -len(suffix)], suffix
    return name, ""


def validate(text):
    typed = {}  # family -> type
    histograms = {}  # family -> [(lineno, labels, suffix, value)]
    samples = 0
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 3 or parts[1] not in ("HELP", "TYPE"):
                fail(f"line {lineno}: malformed comment {line!r}")
            if not NAME_RE.match(parts[2]):
                fail(f"line {lineno}: bad metric name {parts[2]!r}")
            if parts[1] == "TYPE":
                kind = parts[3].strip() if len(parts) > 3 else ""
                if kind not in TYPES:
                    fail(f"line {lineno}: unknown type {kind!r}")
                if parts[2] in typed:
                    fail(f"line {lineno}: duplicate TYPE for {parts[2]}")
                typed[parts[2]] = kind
            continue
        m = SAMPLE_RE.match(line)
        if not m:
            fail(f"line {lineno}: malformed sample {line!r}")
        name, label_blob, value_text = m.groups()
        labels = None
        if label_blob:
            labels = {}
            for pair in label_blob[1:-1].split(","):
                lm = LABEL_RE.match(pair)
                if not lm:
                    fail(f"line {lineno}: malformed label {pair!r}")
                labels[lm.group(1)] = lm.group(2)
        value = parse_value(lineno, value_text)
        family, suffix = base_family(name, typed)
        if family not in typed:
            fail(f"line {lineno}: sample {name} has no preceding TYPE")
        if typed[family] == "histogram":
            histograms.setdefault(family, []).append(
                (lineno, labels, suffix, value))
        samples += 1
    if samples == 0:
        fail("no samples found")
    for family, kind in typed.items():
        if kind == "histogram":
            check_histogram(family, histograms.get(family, []))
    print(f"check_promtext: OK ({samples} samples, {len(typed)} families, "
          f"{len(histograms)} histograms)", file=sys.stderr)


def main(argv):
    if len(argv) >= 2 and argv[1] == "scrape":
        if len(argv) != 4:
            fail("usage: check_promtext.py scrape ADDR PATH")
        scrape(argv[2], argv[3])
    elif len(argv) >= 2 and argv[1] == "validate":
        if len(argv) == 3:
            with open(argv[2], "r", encoding="utf-8") as f:
                validate(f.read())
        else:
            validate(sys.stdin.read())
    else:
        fail("usage: check_promtext.py <scrape ADDR PATH | validate [FILE]>")


if __name__ == "__main__":
    main(sys.argv)
