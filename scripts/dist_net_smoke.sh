#!/usr/bin/env bash
# Socket-transport chaos smoke for network-transparent sharding
# (DESIGN.md §14), run by the chaos-smoke CI job:
#
#   1. generate a database and compute the reference panel with a
#      single-process `catapult_cli mine` run;
#   2. run the same mine sharded over a Unix-domain socket fleet, SIGKILL
#      one catapult_worker mid-run, and let a clean survivor absorb the
#      orphaned shard — the panel must byte-match the reference;
#   3. run it again over TCP loopback with one clean worker — byte-match
#      again, and the report JSON must carry the remote membership block;
#      the supervisor's --trace-out must be one valid Chrome-trace JSON
#      file with the worker's spans merged onto their own process track;
#   4. run with no workers at all under a short join timeout — the
#      in-process fallback must still byte-match, with the dedicated
#      exit code 7 flagging "completed only via fallback";
#   5. rerun the fleet twice under CATAPULT_FIXED_TICKS — the merged trace
#      must be byte-stable across runs (DESIGN.md §16).
#
# Usage: scripts/dist_net_smoke.sh [BUILD_DIR]   (default: build)

set -euo pipefail

BUILD_DIR=${1:-build}
CLI=$BUILD_DIR/examples/catapult_cli
WORKER=$BUILD_DIR/examples/catapult_worker
for bin in "$CLI" "$WORKER"; do
  [ -x "$bin" ] || { echo "missing binary: $bin" >&2; exit 1; }
done

WORK=$(mktemp -d)
WORKER_PIDS=()
cleanup() {
  for pid in "${WORKER_PIDS[@]:-}"; do kill -9 "$pid" 2>/dev/null || true; done
  rm -rf "$WORK"
}
trap cleanup EXIT

# Waits (bounded) for every spawned worker to exit on its own: a worker
# still alive after the supervisor finished and its dial/handshake budget
# ran out is a hang, and hangs are exactly what this smoke is for.
reap_workers() {
  local deadline=$((SECONDS + 20))
  for pid in "${WORKER_PIDS[@]:-}"; do
    while kill -0 "$pid" 2>/dev/null; do
      if [ "$SECONDS" -ge "$deadline" ]; then
        echo "worker $pid still alive after the run" >&2
        return 1
      fi
      sleep 0.2
    done
  done
  WORKER_PIDS=()
}

MINE_FLAGS=(--gamma 8 --seed 42)

echo "== reference: single-process run"
"$CLI" generate --out "$WORK/db.txt" --graphs 120 --seed 11
"$CLI" mine --db "$WORK/db.txt" --out "$WORK/single.txt" "${MINE_FLAGS[@]}" \
  > /dev/null

echo "== unix-socket fleet with a SIGKILLed worker"
SOCK=unix:$WORK/sup.sock
"$CLI" mine --db "$WORK/db.txt" --out "$WORK/uds.txt" "${MINE_FLAGS[@]}" \
  --processes 2 --listen "$SOCK" > "$WORK/uds.log" 2>&1 &
SUP_PID=$!
"$WORKER" --db "$WORK/db.txt" --connect "$SOCK" --name victim \
  "${MINE_FLAGS[@]}" > /dev/null 2>&1 &
VICTIM_PID=$!
WORKER_PIDS+=("$VICTIM_PID")
# Give the victim a beat to join and start carrying a shard, then kill it
# dead — no signal handler, no goodbye frame. The survivor (started after
# the kill, so the shard loss is guaranteed observable) finishes the run.
# The kill is best-effort chaos: on a fast machine the victim may already
# have finished, and the panel assertion below holds either way.
sleep 0.4
kill -9 "$VICTIM_PID" 2>/dev/null || true
"$WORKER" --db "$WORK/db.txt" --connect "$SOCK" --name survivor \
  "${MINE_FLAGS[@]}" > /dev/null 2>&1 &
WORKER_PIDS+=("$!")
wait "$SUP_PID" || { echo "supervisor failed"; cat "$WORK/uds.log"; exit 1; }
diff "$WORK/single.txt" "$WORK/uds.txt" \
  || { echo "uds panel differs from single-process panel"; exit 1; }
grep -q "remote:" "$WORK/uds.log" \
  || { echo "missing remote summary"; cat "$WORK/uds.log"; exit 1; }
reap_workers || exit 1
echo "   panel byte-identical after worker SIGKILL"

echo "== tcp loopback fleet"
PORT=$((20000 + RANDOM % 20000))
ADDR=tcp:127.0.0.1:$PORT
"$CLI" mine --db "$WORK/db.txt" --out "$WORK/tcp.txt" "${MINE_FLAGS[@]}" \
  --processes 2 --listen "$ADDR" --metrics-out "$WORK/tcp_metrics.json" \
  --trace-out "$WORK/tcp_trace.json" \
  > "$WORK/tcp.log" 2>&1 &
SUP_PID=$!
"$WORKER" --db "$WORK/db.txt" --connect "$ADDR" "${MINE_FLAGS[@]}" \
  > /dev/null 2>&1 &
WORKER_PIDS+=("$!")
wait "$SUP_PID" || { echo "tcp supervisor failed"; cat "$WORK/tcp.log"; exit 1; }
diff "$WORK/single.txt" "$WORK/tcp.txt" \
  || { echo "tcp panel differs from single-process panel"; exit 1; }
python3 -m json.tool "$WORK/tcp_metrics.json" > /dev/null
grep -q '"dist.net.joins"' "$WORK/tcp_metrics.json" \
  || { echo "missing dist.net.* counters"; exit 1; }
# One merged Chrome trace for the whole fleet: valid JSON, with worker
# spans re-rooted on their own "catapult shard N" process tracks under the
# supervisor's shard spans (DESIGN.md §16).
python3 -m json.tool "$WORK/tcp_trace.json" > /dev/null
grep -q '"dist.sharded_phases"' "$WORK/tcp_trace.json" \
  || { echo "missing supervisor span in merged trace"; exit 1; }
grep -q '"catapult shard ' "$WORK/tcp_trace.json" \
  || { echo "missing worker process track in merged trace"; exit 1; }
grep -q '"worker.shard-' "$WORK/tcp_trace.json" \
  || { echo "missing imported worker spans in merged trace"; exit 1; }
reap_workers || exit 1
echo "   panel byte-identical over tcp loopback, merged trace valid"

echo "== fleet never forms: in-process fallback with exit code 7"
set +e
timeout 120 "$CLI" mine --db "$WORK/db.txt" --out "$WORK/lost.txt" \
  "${MINE_FLAGS[@]}" --processes 2 --listen "unix:$WORK/lost.sock" \
  --join-timeout-ms 500 > "$WORK/lost.log" 2>&1
LOST_EXIT=$?
set -e
[ "$LOST_EXIT" -eq 7 ] \
  || { echo "expected exit 7, got $LOST_EXIT"; cat "$WORK/lost.log"; exit 1; }
diff "$WORK/single.txt" "$WORK/lost.txt" \
  || { echo "fallback panel differs"; exit 1; }
echo "   fallback byte-identical, exit code 7"

echo "== fixed-tick fleet: merged trace byte-stable across runs"
# Under CATAPULT_FIXED_TICKS every process draws timestamps from the same
# deterministic counter, so two identical fleet runs must merge to
# byte-identical trace files. A single worker carrying both shards keeps
# the member interleaving deterministic too.
for run in 1 2; do
  FSOCK=unix:$WORK/fixed_$run.sock
  CATAPULT_FIXED_TICKS=1 "$CLI" mine --db "$WORK/db.txt" \
    --out "$WORK/fixed_$run.txt" "${MINE_FLAGS[@]}" --processes 2 \
    --listen "$FSOCK" --trace-out "$WORK/fixed_trace_$run.json" \
    > "$WORK/fixed_$run.log" 2>&1 &
  SUP_PID=$!
  CATAPULT_FIXED_TICKS=1 "$WORKER" --db "$WORK/db.txt" --connect "$FSOCK" \
    "${MINE_FLAGS[@]}" > /dev/null 2>&1 &
  WORKER_PIDS+=("$!")
  wait "$SUP_PID" \
    || { echo "fixed-tick supervisor failed"; cat "$WORK/fixed_$run.log"; exit 1; }
  reap_workers || exit 1
done
diff "$WORK/fixed_trace_1.json" "$WORK/fixed_trace_2.json" \
  || { echo "merged trace not byte-stable under fixed ticks"; exit 1; }
diff "$WORK/single.txt" "$WORK/fixed_1.txt" \
  || { echo "fixed-tick panel differs"; exit 1; }
echo "   trace byte-identical across fixed-tick reruns"

echo "dist_net_smoke: all checks passed"
