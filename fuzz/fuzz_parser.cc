// libFuzzer target for the hardened gSpan-text parser (src/graph/io.h).
//
// The parser's contract under fuzzing: for ANY byte string, ReadDatabase in
// quarantine mode returns a database (possibly empty) and a consistent
// IngestReport — no crash, no CATAPULT_CHECK, no sanitizer finding, and no
// unbounded allocation (the structural limits below keep the largest
// accepted graph small). Strict mode is exercised on the same input; it may
// reject but must do so through ParseError.
//
// Build: -DCATAPULT_FUZZ=ON with clang (links -fsanitize=fuzzer,address).
// Under gcc the same file builds as a standalone regression driver that
// replays corpus files passed on the command line (see standalone_main.h).

#include <cstddef>
#include <cstdint>
#include <sstream>
#include <string>

#include "src/graph/io.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  std::string input(reinterpret_cast<const char*>(data), size);

  catapult::IngestOptions options;
  // Small limits keep fuzz throughput high and make limit-violation paths
  // easy for the fuzzer to reach.
  options.limits.max_line_bytes = 512;
  options.limits.max_vertices_per_graph = 64;
  options.limits.max_edges_per_graph = 128;
  options.limits.max_label_bytes = 32;
  options.limits.max_labels = 256;
  options.limits.max_graphs = 64;
  options.memory = catapult::MemoryBudget::Limited(0, 1 << 20);

  {
    std::istringstream stream(input);
    catapult::IngestReport report;
    catapult::ParseError error;
    auto db = catapult::ReadDatabase(stream, options, &report, &error);
    if (db.has_value()) {
      // Internal consistency: the report must account for every graph.
      if (report.graphs_ingested != db->size()) __builtin_trap();
      // Quarantine digest is zero exactly when no record was quarantined
      // (pre-header junk is digested too, without claiming a graph).
      if ((report.quarantine_digest != 0) !=
          !report.quarantine_reasons.empty()) {
        __builtin_trap();
      }
      (void)report.Summary();
    }
  }

  {
    std::istringstream stream(input);
    catapult::IngestOptions strict = options;
    strict.strict = true;
    catapult::ParseError error;
    auto db = catapult::ReadDatabase(stream, strict, nullptr, &error);
    if (!db.has_value() && error.message.empty()) __builtin_trap();
  }
  return 0;
}

#include "fuzz/standalone_main.h"
