// libFuzzer target for the flat CSR graph core (src/graph/flat_graph.h).
//
// The input bytes are fed through the quarantine-mode gSpan parser; every
// graph that survives ingestion is flattened and the FlatGraph invariants
// are asserted against the source Graph: identical vertex labels, degrees
// and edge lists, binary-search FindEdge agreeing with the adjacency-scan
// HasEdge/EdgeLabel on every vertex pair, label-domain bitsets matching a
// direct label count, and the flat VF2 kernel agreeing with the reference
// kernel on self-containment. Any divergence traps.
//
// Build: -DCATAPULT_FUZZ=ON with clang (links -fsanitize=fuzzer,address).
// Under gcc the same file builds as a standalone regression driver that
// replays corpus files passed on the command line (see standalone_main.h).

#include <cstddef>
#include <cstdint>
#include <sstream>
#include <string>

#include "src/graph/algorithms.h"
#include "src/graph/flat_graph.h"
#include "src/graph/io.h"
#include "src/iso/flat_vf2.h"
#include "src/iso/vf2.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  std::string input(reinterpret_cast<const char*>(data), size);

  catapult::IngestOptions options;
  // The same small structural limits as fuzz_parser: graphs stay tiny, so
  // the quadratic pair scans below are cheap.
  options.limits.max_line_bytes = 512;
  options.limits.max_vertices_per_graph = 64;
  options.limits.max_edges_per_graph = 128;
  options.limits.max_label_bytes = 32;
  options.limits.max_labels = 256;
  options.limits.max_graphs = 16;
  options.memory = catapult::MemoryBudget::Limited(0, 1 << 20);

  std::istringstream stream(input);
  catapult::IngestReport report;
  catapult::ParseError error;
  auto db = catapult::ReadDatabase(stream, options, &report, &error);
  if (!db.has_value() || db->empty()) return 0;

  for (size_t id = 0; id < db->size(); ++id) {
    const catapult::Graph& g = db->graph(static_cast<catapult::GraphId>(id));
    catapult::FlatGraph flat = catapult::FlatGraph::Build(g);
    catapult::FlatGraphView view = flat.View();

    if (view.NumVertices() != g.NumVertices()) __builtin_trap();
    if (view.NumEdges() != g.NumEdges()) __builtin_trap();

    size_t adjacency_entries = 0;
    for (catapult::VertexId u = 0; u < g.NumVertices(); ++u) {
      if (view.VertexLabel(u) != g.VertexLabel(u)) __builtin_trap();
      if (view.Degree(u) != g.Degree(u)) __builtin_trap();
      adjacency_entries += view.Degree(u);
      // Flat adjacency preserves insertion order and carries the correct
      // neighbor labels.
      const catapult::FlatNeighbor* fn = view.NeighborsBegin(u);
      for (const catapult::Graph::Neighbor& n : g.Neighbors(u)) {
        if (fn == view.NeighborsEnd(u)) __builtin_trap();
        if (fn->to != n.to) __builtin_trap();
        if (fn->edge_label != n.edge_label) __builtin_trap();
        if (fn->to_label != g.VertexLabel(n.to)) __builtin_trap();
        ++fn;
      }
      if (fn != view.NeighborsEnd(u)) __builtin_trap();
      // Binary-search lookups agree with the adjacency scan on every pair.
      for (catapult::VertexId v = 0; v < g.NumVertices(); ++v) {
        if (view.HasEdge(u, v) != g.HasEdge(u, v)) __builtin_trap();
        if (g.HasEdge(u, v) &&
            view.EdgeLabel(u, v) != g.EdgeLabel(u, v)) {
          __builtin_trap();
        }
      }
    }
    if (adjacency_entries != 2 * g.NumEdges()) __builtin_trap();

    // Label domains match a direct scan.
    catapult::LabelDomains domains = catapult::LabelDomains::Build(view);
    for (catapult::VertexId v = 0; v < g.NumVertices(); ++v) {
      catapult::Label label = g.VertexLabel(v);
      const uint64_t* words = domains.Words(label);
      if (words == nullptr) __builtin_trap();
      if ((words[v >> 6] & (uint64_t{1} << (v & 63))) == 0) __builtin_trap();
    }

    // The flat kernel agrees with the reference kernel on self-containment
    // (true for every non-empty connected graph; both must say the same
    // even when g is disconnected and the kernels are not applicable --
    // ContainsSubgraph CHECKs connectivity, so only test connected inputs).
    if (g.NumVertices() > 0 && catapult::IsConnected(g)) {
      bool reference = catapult::ContainsSubgraph(g, g);
      bool flat_result =
          catapult::FlatContainsSubgraph(view, view, &domains);
      if (reference != flat_result) __builtin_trap();
    }
  }
  return 0;
}

#include "fuzz/standalone_main.h"
