// Standalone replay driver for fuzz targets built without libFuzzer.
//
// When the toolchain is not clang (no -fsanitize=fuzzer), fuzz/CMakeLists.txt
// defines CATAPULT_FUZZ_STANDALONE and each target gets this main() instead:
// it replays every file named on the command line through
// LLVMFuzzerTestOneInput. That keeps the fuzz entry points compiled and
// regression-testable on every toolchain; actual coverage-guided fuzzing
// needs the clang build (see .github/workflows/ci.yml, job fuzz-smoke).
//
// Included at the END of each fuzz target translation unit.

#ifndef CATAPULT_FUZZ_STANDALONE_MAIN_H_
#define CATAPULT_FUZZ_STANDALONE_MAIN_H_

#ifdef CATAPULT_FUZZ_STANDALONE

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

int main(int argc, char** argv) {
  int replayed = 0;
  for (int i = 1; i < argc; ++i) {
    std::ifstream in(argv[i], std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[i]);
      return 1;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    std::string bytes = buffer.str();
    LLVMFuzzerTestOneInput(reinterpret_cast<const uint8_t*>(bytes.data()),
                           bytes.size());
    ++replayed;
  }
  std::printf("replayed %d input(s) without incident\n", replayed);
  return 0;
}

#endif  // CATAPULT_FUZZ_STANDALONE

#endif  // CATAPULT_FUZZ_STANDALONE_MAIN_H_
