// libFuzzer target for the checkpoint decode path (src/persist).
//
// Exercises both layers that consume untrusted checkpoint bytes on --resume:
//   1. DecodeRecordBytes — the CATCKPT1 framing (magic, header CRC, version,
//      type, fingerprint, size, payload CRC);
//   2. the phase payload decoders (DecodeClusteringPayload / DecodeCsgPayload
//      / DecodeSelectionPayload), which must reject ANY byte string with a
//      reason string — never a crash, CATAPULT_CHECK, or out-of-bounds read
//      (BinaryReader's sticky-fail contract).
//
// The first input byte steers which decoder sees the remainder, so one
// corpus covers all four consumers.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/graph/graph_database.h"
#include "src/persist/checkpoint.h"
#include "src/persist/record_io.h"

namespace {

// A small fixed database for the semantic cross-checks of the payload
// decoders (support universes, cluster partitions). Built once; the fuzz
// input never mutates it.
const catapult::GraphDatabase& FixedDb() {
  static const catapult::GraphDatabase* db = [] {
    auto* d = new catapult::GraphDatabase();
    for (int i = 0; i < 4; ++i) {
      catapult::Graph g;
      catapult::VertexId a = g.AddVertex(0);
      catapult::VertexId b = g.AddVertex(1);
      catapult::VertexId c = g.AddVertex(i % 2);
      g.AddEdge(a, b);
      g.AddEdge(b, c);
      d->Add(std::move(g));
    }
    return d;
  }();
  return *db;
}

const std::vector<std::vector<catapult::GraphId>>& FixedClusters() {
  static const std::vector<std::vector<catapult::GraphId>> clusters = {
      {0, 2}, {1, 3}};
  return clusters;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size == 0) return 0;
  uint8_t selector = data[0];
  std::string bytes(reinterpret_cast<const char*>(data + 1), size - 1);

  switch (selector % 4) {
    case 0: {
      std::string payload;
      uint32_t crc = 0;
      (void)catapult::persist::DecodeRecordBytes(
          bytes, catapult::persist::RecordType::kClustering, 0x1234, &payload,
          &crc);
      break;
    }
    case 1: {
      catapult::ClusteringArtifact artifact;
      (void)catapult::DecodeClusteringPayload(bytes, FixedDb(), &artifact);
      break;
    }
    case 2: {
      catapult::CsgArtifact artifact;
      (void)catapult::DecodeCsgPayload(bytes, FixedClusters(), &artifact);
      break;
    }
    case 3: {
      catapult::PatternBudget budget;
      budget.eta_min = 2;
      budget.eta_max = 5;
      budget.gamma = 8;
      catapult::SelectorCheckpointState state;
      (void)catapult::DecodeSelectionPayload(bytes, FixedClusters(), budget,
                                             &state);
      break;
    }
  }
  return 0;
}

#include "fuzz/standalone_main.h"
