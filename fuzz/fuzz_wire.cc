// libFuzzer target for the CTWF frame layer (src/dist/wire.h) — the bytes a
// supervisor reads from worker pipes and a catapult_serve process reads from
// client sockets. Both consumers run FrameReader over chunks of untrusted
// bytes and then hand each complete payload to a typed decoder; none of it
// may ever crash, CATAPULT_CHECK, or read out of bounds — a bad peer is
// answered
// by poisoning the stream, nothing more.
//
// The first input byte steers the harness:
//   - the low bit picks the chunking discipline (one Feed vs byte-at-a-time,
//     which is what shakes out header-reassembly bugs);
//   - the rest selects which typed decoder additionally sees the raw
//     remainder directly (worker frames, every serve/protocol.h payload,
//     and the remote-fleet handshake/assignment frames of DESIGN.md §14),
//     so one corpus covers the framing and all payload codecs.
// Every complete frame the reader yields is also dispatched to the decoder
// matching its frame type, mirroring what the real consumers do.

#include <cstddef>
#include <cstdint>
#include <string>

#include "src/dist/wire.h"
#include "src/serve/protocol.h"

namespace {

using catapult::dist::Decode;
using catapult::dist::Frame;
using catapult::dist::FrameReader;
using catapult::dist::FrameType;

// What the supervisor / server does with a completed frame: decode the
// payload by type. Return values are irrelevant; surviving is the test.
void DispatchFrame(const Frame& frame) {
  switch (frame.type) {
    case FrameType::kHello: {
      catapult::dist::HelloFrame f;
      (void)Decode(frame.payload, &f);
      break;
    }
    case FrameType::kHeartbeat: {
      catapult::dist::HeartbeatFrame f;
      (void)Decode(frame.payload, &f);
      break;
    }
    case FrameType::kClusterDone: {
      catapult::dist::ClusterDoneFrame f;
      (void)Decode(frame.payload, &f);
      break;
    }
    case FrameType::kShardDone: {
      catapult::dist::ShardDoneFrame f;
      (void)Decode(frame.payload, &f);
      break;
    }
    case FrameType::kShardError: {
      catapult::dist::ShardErrorFrame f;
      (void)Decode(frame.payload, &f);
      break;
    }
    case FrameType::kServeRequest: {
      catapult::serve::MineRequest f;
      (void)catapult::serve::Decode(frame.payload, &f);
      break;
    }
    case FrameType::kServeResponse: {
      catapult::serve::MineReply f;
      if (catapult::serve::Decode(frame.payload, &f)) {
        catapult::serve::Panel panel;
        (void)catapult::serve::DecodePanel(f.panel, &panel);
      }
      break;
    }
    case FrameType::kServeShed: {
      catapult::serve::ShedReply f;
      (void)catapult::serve::Decode(frame.payload, &f);
      break;
    }
    case FrameType::kServeError: {
      catapult::serve::ErrorReply f;
      (void)catapult::serve::Decode(frame.payload, &f);
      break;
    }
    case FrameType::kServePing: {
      catapult::serve::PingRequest f;
      (void)catapult::serve::Decode(frame.payload, &f);
      break;
    }
    case FrameType::kServePong: {
      catapult::serve::PongReply f;
      (void)catapult::serve::Decode(frame.payload, &f);
      break;
    }
    case FrameType::kJoinRequest: {
      catapult::dist::JoinRequestFrame f;
      (void)Decode(frame.payload, &f);
      break;
    }
    case FrameType::kJoinAccept: {
      catapult::dist::JoinAcceptFrame f;
      (void)Decode(frame.payload, &f);
      break;
    }
    case FrameType::kJoinReject: {
      catapult::dist::JoinRejectFrame f;
      (void)Decode(frame.payload, &f);
      break;
    }
    case FrameType::kShardAssign: {
      catapult::dist::ShardAssignFrame f;
      (void)Decode(frame.payload, &f);
      break;
    }
    case FrameType::kClusterResult: {
      catapult::dist::ClusterResultFrame f;
      (void)Decode(frame.payload, &f);
      break;
    }
    case FrameType::kShutdown: {
      catapult::dist::ShutdownFrame f;
      (void)Decode(frame.payload, &f);
      break;
    }
  }
}

void RunReader(const char* data, size_t size, bool byte_at_a_time) {
  FrameReader reader;
  if (byte_at_a_time) {
    for (size_t i = 0; i < size; ++i) {
      reader.Feed(data + i, 1);
      // Drain after every byte: frame boundaries must be invariant to
      // chunking, and a poisoned reader must keep returning nullopt.
      while (auto frame = reader.Next()) DispatchFrame(*frame);
    }
  } else {
    reader.Feed(data, size);
    while (auto frame = reader.Next()) DispatchFrame(*frame);
  }
  if (reader.corrupt()) {
    // A poisoned stream must carry a reason and stay poisoned.
    if (reader.error().empty()) __builtin_trap();
    if (reader.Next().has_value()) __builtin_trap();
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size == 0) return 0;
  const uint8_t selector = data[0];
  const char* bytes = reinterpret_cast<const char*>(data + 1);
  const size_t n = size - 1;

  RunReader(bytes, n, (selector & 1) != 0);

  // Also aim the remainder straight at one typed payload decoder, skipping
  // the framing — reachable in production whenever a frame's CRC passes but
  // its payload is hostile.
  const std::string payload(bytes, n);
  switch ((selector >> 1) % 12) {
    case 0: {
      catapult::dist::ShardDoneFrame f;
      (void)Decode(payload, &f);
      break;
    }
    case 1: {
      catapult::dist::ShardErrorFrame f;
      (void)Decode(payload, &f);
      break;
    }
    case 2: {
      catapult::serve::MineRequest f;
      (void)catapult::serve::Decode(payload, &f);
      break;
    }
    case 3: {
      catapult::serve::MineReply f;
      (void)catapult::serve::Decode(payload, &f);
      break;
    }
    case 4: {
      catapult::serve::ShedReply f;
      (void)catapult::serve::Decode(payload, &f);
      break;
    }
    case 5: {
      catapult::serve::Panel panel;
      (void)catapult::serve::DecodePanel(payload, &panel);
      break;
    }
    case 6: {
      catapult::serve::PongReply f;
      (void)catapult::serve::Decode(payload, &f);
      break;
    }
    case 7: {
      catapult::dist::JoinRequestFrame f;
      (void)Decode(payload, &f);
      break;
    }
    case 8: {
      // The hostile-count decoder: member/cluster counts must be capped
      // against the payload size, never trusted into an allocation.
      catapult::dist::ShardAssignFrame f;
      (void)Decode(payload, &f);
      break;
    }
    case 9: {
      catapult::dist::ClusterResultFrame f;
      (void)Decode(payload, &f);
      break;
    }
    case 10: {
      catapult::dist::JoinAcceptFrame f;
      (void)Decode(payload, &f);
      break;
    }
    case 11: {
      // Request-id-carrying error reply (DESIGN.md §16); the hostile cases
      // that matter most here are the span-count and counter-index bounds
      // of the trace-carrying ShardDone/ShardAssign codecs in cases 0/8.
      catapult::serve::ErrorReply f;
      (void)catapult::serve::Decode(payload, &f);
      break;
    }
  }
  return 0;
}

#include "fuzz/standalone_main.h"
